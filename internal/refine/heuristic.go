package refine

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/bitset"
	"repro/internal/matrix"
	"repro/internal/rules"
)

// HeuristicOptions configures the local-search engine.
type HeuristicOptions struct {
	// Restarts is the number of independent seeds (default 8).
	Restarts int
	// MaxIters caps local-search rounds per restart (default 200).
	MaxIters int
	// Seed makes runs deterministic.
	Seed int64
	// TargetEarlyExit stops at the first restart whose result clears the
	// problem's threshold — the search drivers set this because any
	// verified witness decides the feasibility instance.
	TargetEarlyExit bool
	// Workers is the number of restarts run concurrently (0 or 1 =
	// sequential). Every restart derives its RNG stream from (Seed,
	// restart index) alone and the winner is picked deterministically
	// (first feasible restart index, else best score with the lowest
	// index breaking ties), so the outcome is identical for every
	// Workers value.
	Workers int
	// Cancel aborts the search when closed; the result is then reported
	// as "no witness found" and must be discarded by the caller.
	Cancel <-chan struct{}
	// Warm, when it covers the view's signatures, replaces restart 0's
	// seed with this assignment (labels folded into [0, k) by first
	// appearance), warm-starting the search from a previous refinement —
	// see WarmStart for mapping an assignment across dataset updates.
	// Remaining restarts keep their usual seeds, so a stale warm seed
	// degrades gracefully to the cold search.
	Warm Assignment
}

func (o *HeuristicOptions) defaults() {
	if o.Restarts == 0 {
		o.Restarts = 8
	}
	if o.MaxIters == 0 {
		o.MaxIters = 200
	}
}

// restartResult is the outcome of one independent restart.
type restartResult struct {
	assign   Assignment
	sc       score
	feasible bool // meaningful only under TargetEarlyExit
	err      error
}

// SolveHeuristic searches for an assignment maximizing the minimum
// σ over non-empty sorts with at most p.K sorts, via greedy seeding
// plus steepest-ascent relocation local search with restarts. Restarts
// are independent and run concurrently across opts.Workers goroutines;
// the result is deterministic and independent of the worker count.
// Feasible answers are exactly verified witnesses; "not found" answers
// carry no infeasibility proof (use SolveExact for that).
func SolveHeuristic(p *Problem, opts HeuristicOptions) (*Refinement, bool, error) {
	if err := p.Validate(); err != nil {
		return nil, false, err
	}
	opts.defaults()
	fn := p.EvalFunc()
	v := p.View
	ge := newGroupEval(fn, v)

	n := opts.Restarts
	results := make([]restartResult, n)
	workers := opts.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for r := 0; r < n; r++ {
			if canceled(opts.Cancel) {
				break
			}
			results[r] = runRestart(p, &opts, ge, r)
			if results[r].err != nil {
				break
			}
			// A witness at index r decides the instance; later restarts
			// could not win the deterministic pick.
			if opts.TargetEarlyExit && results[r].feasible {
				break
			}
		}
	} else {
		var next int64 = -1
		// bestFeasible is the lowest restart index known to hold a
		// witness; restarts above it are skipped (they cannot win).
		bestFeasible := int64(n)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					r := int(atomic.AddInt64(&next, 1))
					if r >= n {
						return
					}
					if canceled(opts.Cancel) {
						return
					}
					if opts.TargetEarlyExit && int64(r) > atomic.LoadInt64(&bestFeasible) {
						continue
					}
					res := runRestart(p, &opts, ge, r)
					results[r] = res
					if opts.TargetEarlyExit && res.feasible {
						for {
							cur := atomic.LoadInt64(&bestFeasible)
							if int64(r) >= cur || atomic.CompareAndSwapInt64(&bestFeasible, cur, int64(r)) {
								break
							}
						}
					}
				}
			}()
		}
		wg.Wait()
	}

	// Deterministic pick: the lowest feasible restart index wins (any
	// witness decides the instance); otherwise the best score, with the
	// lowest index breaking ties. Skipped or cancelled restarts have a
	// nil assignment and never win.
	var best Assignment
	bestScore := score{min: -1}
	for r := 0; r < n; r++ {
		res := results[r]
		if res.err != nil {
			if res.err == errCanceled {
				continue
			}
			return nil, false, res.err
		}
		if res.assign == nil {
			continue
		}
		if opts.TargetEarlyExit && res.feasible {
			best = res.assign
			break
		}
		if res.sc.better(bestScore) {
			bestScore = res.sc
			best = res.assign
		}
	}
	if best == nil {
		// Cancelled before any restart completed.
		return nil, false, nil
	}
	values, min, err := EvalAssignment(fn, v, best, p.K)
	if err != nil {
		return nil, false, err
	}
	feasible, err := Feasible(fn, v, best, p.K, p.Theta1, p.Theta2)
	if err != nil {
		return nil, false, err
	}
	// A feasible answer is an exactly-verified witness (rational
	// comparison in Feasible); only a "not found" answer is heuristic.
	return &Refinement{Assignment: best, K: p.K, Values: values, MinSigma: min, Exact: feasible}, feasible, nil
}

// restartSeed derives a well-mixed per-restart RNG seed (splitmix64)
// so restarts are independent of execution order.
func restartSeed(seed int64, r int) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15*uint64(r+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// runRestart executes one independent restart: seed construction, an
// optional seed-feasibility shortcut, and local search.
func runRestart(p *Problem, opts *HeuristicOptions, ge *groupEval, r int) restartResult {
	restarts.Inc()
	rng := rand.New(rand.NewSource(restartSeed(opts.Seed, r)))
	var assign Assignment
	var err error
	switch {
	case r == 0 && len(opts.Warm) == ge.view.NumSignatures():
		assign = foldAssignment(opts.Warm, p.K)
	case r%4 == 0:
		assign, err = mergeSeed(ge, p.K)
	case r%4 == 1:
		assign, err = greedySeed(ge, p.K)
	case r%4 == 2:
		assign = profileSeed(ge.view, p.K, rng)
	default:
		assign = make(Assignment, ge.view.NumSignatures())
		for i := range assign {
			assign[i] = rng.Intn(p.K)
		}
	}
	if err != nil {
		return restartResult{err: err}
	}
	// Seeds are often already feasible (notably at large k, where a
	// near-identity assignment clears any threshold); skip the local
	// search when a witness only is needed.
	if opts.TargetEarlyExit {
		if ok, err := Feasible(ge.fn, ge.view, assign, p.K, p.Theta1, p.Theta2); err != nil {
			return restartResult{err: err}
		} else if ok {
			return restartResult{assign: assign, feasible: true}
		}
	}
	st, err := newSearchState(ge, assign, p.K)
	if err != nil {
		return restartResult{err: err}
	}
	if err := st.localSearch(opts.MaxIters, opts.Cancel); err != nil {
		return restartResult{err: err}
	}
	res := restartResult{assign: st.assign, sc: st.score()}
	if opts.TargetEarlyExit {
		ok, err := Feasible(ge.fn, ge.view, st.assign, p.K, p.Theta1, p.Theta2)
		if err != nil {
			return restartResult{err: err}
		}
		res.feasible = ok
	}
	return res
}

// score orders candidate assignments: primarily by minimum σ over
// non-empty sorts, secondarily by the sum of σ values (to escape
// plateaus where the minimum is pinned by one sort).
type score struct {
	min float64
	sum float64
}

func (s score) better(t score) bool {
	const eps = 1e-12
	if s.min > t.min+eps {
		return true
	}
	if s.min < t.min-eps {
		return false
	}
	return s.sum > t.sum+eps
}

// groupEval is the shared, immutable evaluation context for one solve:
// the measure, the view, and per-signature property supports and
// subject counts. When the measure is counts-based (rules.CountsFunc,
// i.e. the closed forms σCov, σSim and compiled one-variable rules),
// groups are scored from running Σ counts in O(|P|) without
// materializing subset views; when it is pair-counts-based with fixed
// demands (rules.PairCountsFunc + PairDemands, i.e. σDep, σSymDep,
// σDepDisj and compiled pinned two-variable rules), a running
// co-occurrence count per demanded pair per sort extends the same
// delta-scoring to dependency measures — no signature scan per move.
// It is safe for concurrent use; mutable scratch lives in the callers.
type groupEval struct {
	fn       rules.Func
	inc      rules.CountsFunc     // nil when fn has no counts form
	pairFn   rules.PairCountsFunc // nil unless pair-incremental mode is on
	pairCols [][2]int             // resolved demanded column pairs
	pairHas  []bool               // [sig·len(pairCols)+slot]: sig has both columns
	view     *matrix.View
	support  [][]int // per signature: set property columns
	count    []int64 // per signature: subject count
	nProps   int
}

func newGroupEval(fn rules.Func, v *matrix.View) *groupEval {
	ge := &groupEval{fn: fn, view: v, nProps: v.NumProperties()}
	if inc, ok := fn.(rules.CountsFunc); ok {
		ge.inc = inc
	} else if pf, ok := fn.(rules.PairCountsFunc); ok {
		if pd, ok := fn.(rules.PairDemands); ok {
			if names := pd.NeededPairs(); names != nil {
				ge.pairFn = pf
				// Demanded pairs with a missing endpoint need no slot: the
				// kernel's own Column lookup reports the absence and the
				// measure goes vacuous without reading the pair.
				for _, np := range names {
					i, ok1 := v.PropertyIndex(np[0])
					j, ok2 := v.PropertyIndex(np[1])
					if ok1 && ok2 {
						ge.pairCols = append(ge.pairCols, [2]int{i, j})
					}
				}
			}
		}
	}
	sigs := v.Signatures()
	ge.support = make([][]int, len(sigs))
	ge.count = make([]int64, len(sigs))
	for i, sg := range sigs {
		ge.support[i] = sg.Support()
		ge.count[i] = int64(sg.Count)
	}
	if ge.pairFn != nil && len(ge.pairCols) > 0 {
		ge.pairHas = make([]bool, len(sigs)*len(ge.pairCols))
		for mu, sg := range sigs {
			base := mu * len(ge.pairCols)
			for s, pc := range ge.pairCols {
				ge.pairHas[base+s] = sg.Bits.Test(pc[0]) && sg.Bits.Test(pc[1])
			}
		}
	}
	return ge
}

// incremental reports whether groups are scored from delta-maintained
// aggregates rather than subset views.
func (ge *groupEval) incremental() bool { return ge.inc != nil || ge.pairFn != nil }

// trackedPairs adapts a group's demanded pair-count slots to the
// rules.PairCounts read interface. Kernels honoring their declared
// PairDemands only read tracked entries; an untracked read panics
// loudly rather than silently corrupting the search.
type trackedPairs struct {
	view *matrix.View
	cols [][2]int
	vals []int64
}

func (t *trackedPairs) Column(p string) (int, bool) { return t.view.PropertyIndex(p) }

func (t *trackedPairs) Both(i, j int) int64 {
	for s, pc := range t.cols {
		if (pc[0] == i && pc[1] == j) || (pc[0] == j && pc[1] == i) {
			return t.vals[s]
		}
	}
	panic("refine: pair-count read outside the measure's declared demands")
}

// addSigPairs adds (sign = +1) or removes (sign = −1) signature mu's
// contribution to a group's demanded pair counts.
func (ge *groupEval) addSigPairs(pairs []int64, mu int, sign int64) {
	if len(ge.pairCols) == 0 {
		return
	}
	c := sign * ge.count[mu]
	base := mu * len(ge.pairCols)
	for s := range ge.pairCols {
		if ge.pairHas[base+s] {
			pairs[s] += c
		}
	}
}

// valueFrom scores a group from its aggregates — counts mode or pair
// mode. tp carries the group's tracked pair counts (nil in counts
// mode). Empty groups are vacuous (σ = 1).
func (ge *groupEval) valueFrom(counts []int64, tp *trackedPairs, subjects int64) float64 {
	if subjects == 0 {
		return 1
	}
	if ge.inc != nil {
		return ge.inc.EvalCounts(counts, subjects).Value()
	}
	return ge.pairFn.EvalPairCounts(counts, tp, subjects).Value()
}

// addSig adds (sign = +1) or removes (sign = −1) signature mu's
// contribution to a running property-count vector.
func (ge *groupEval) addSig(counts []int64, mu int, sign int64) {
	c := sign * ge.count[mu]
	for _, p := range ge.support[mu] {
		counts[p] += c
	}
}

// groupCounts fills counts with the aggregate of the group and returns
// its subject count. counts must be zeroed, len nProps.
func (ge *groupEval) groupCounts(counts []int64, group []int) int64 {
	var subjects int64
	for _, mu := range group {
		ge.addSig(counts, mu, +1)
		subjects += ge.count[mu]
	}
	return subjects
}

// eval scores an arbitrary group, via counts when available and the
// generic subset-view evaluator otherwise. scratch (len nProps) is
// used in counts mode; pass nil to allocate.
func (ge *groupEval) eval(group []int, scratch []int64) (float64, error) {
	if len(group) == 0 {
		return 1, nil
	}
	if ge.inc != nil {
		if scratch == nil {
			scratch = make([]int64, ge.nProps)
		} else {
			for i := range scratch {
				scratch[i] = 0
			}
		}
		subjects := ge.groupCounts(scratch, group)
		return ge.valueFrom(scratch, nil, subjects), nil
	}
	r, err := ge.fn.Eval(ge.view.Subset(group))
	if err != nil {
		return 0, err
	}
	return r.Value(), nil
}

// searchState evaluates relocation moves incrementally. Per-sort σ
// values are cached, and for counts-based measures the per-sort
// property-count aggregates — plus, under pair mode, the demanded
// co-occurrence counts — are maintained so a candidate move is scored
// in O(|P|) — independent of group sizes — instead of re-evaluating
// whole subset views.
type searchState struct {
	ge     *groupEval
	assign Assignment
	k      int
	groups [][]int   // sort -> ascending signature indices
	vals   []float64 // per-sort σ (vacuous 1 for empty)
	// Incremental aggregates (counts and pair modes).
	counts       [][]int64 // per sort: property counts
	pairs        [][]int64 // per sort: demanded pair counts (pair mode)
	nsub         []int64   // per sort: subject count
	scratch      []int64
	scratchPairs []int64
	tp           *trackedPairs // reusable aggregate adapter (pair mode)
}

// value scores a sort from its aggregates, routing the tracked pair
// counts through the reusable adapter in pair mode.
func (st *searchState) value(counts, pairs []int64, subjects int64) float64 {
	if st.tp != nil {
		st.tp.vals = pairs
	}
	return st.ge.valueFrom(counts, st.tp, subjects)
}

func newSearchState(ge *groupEval, assign Assignment, k int) (*searchState, error) {
	st := &searchState{ge: ge, assign: assign, k: k}
	st.groups = make([][]int, k)
	for sig, s := range assign {
		st.groups[s] = append(st.groups[s], sig)
	}
	st.vals = make([]float64, k)
	if ge.incremental() {
		st.counts = make([][]int64, k)
		st.nsub = make([]int64, k)
		st.scratch = make([]int64, ge.nProps)
		if ge.pairFn != nil {
			st.pairs = make([][]int64, k)
			st.scratchPairs = make([]int64, len(ge.pairCols))
			st.tp = &trackedPairs{view: ge.view, cols: ge.pairCols}
		}
		for s := range st.groups {
			st.counts[s] = make([]int64, ge.nProps)
			st.nsub[s] = ge.groupCounts(st.counts[s], st.groups[s])
			var pv []int64
			if st.pairs != nil {
				st.pairs[s] = make([]int64, len(ge.pairCols))
				for _, mu := range st.groups[s] {
					ge.addSigPairs(st.pairs[s], mu, +1)
				}
				pv = st.pairs[s]
			}
			st.vals[s] = st.value(st.counts[s], pv, st.nsub[s])
		}
		return st, nil
	}
	for s := range st.groups {
		val, err := ge.eval(st.groups[s], nil)
		if err != nil {
			return nil, err
		}
		st.vals[s] = val
	}
	return st, nil
}

// evalRemove scores sort a with signature mu removed. ga is the group
// list after removal (used only in generic mode).
func (st *searchState) evalRemove(a, mu int, ga []int) (float64, error) {
	if !st.ge.incremental() {
		return st.ge.eval(ga, nil)
	}
	copy(st.scratch, st.counts[a])
	st.ge.addSig(st.scratch, mu, -1)
	var pv []int64
	if st.pairs != nil {
		copy(st.scratchPairs, st.pairs[a])
		st.ge.addSigPairs(st.scratchPairs, mu, -1)
		pv = st.scratchPairs
	}
	return st.value(st.scratch, pv, st.nsub[a]-st.ge.count[mu]), nil
}

// evalInsert scores sort b with signature mu added. gb is the group
// list after insertion (used only in generic mode).
func (st *searchState) evalInsert(b, mu int, gb []int) (float64, error) {
	if !st.ge.incremental() {
		return st.ge.eval(gb, nil)
	}
	copy(st.scratch, st.counts[b])
	st.ge.addSig(st.scratch, mu, +1)
	var pv []int64
	if st.pairs != nil {
		copy(st.scratchPairs, st.pairs[b])
		st.ge.addSigPairs(st.scratchPairs, mu, +1)
		pv = st.scratchPairs
	}
	return st.value(st.scratch, pv, st.nsub[b]+st.ge.count[mu]), nil
}

// apply moves signature mu to sort b, with va/vb the already-computed
// σ values of the shrunken source and grown destination sorts.
func (st *searchState) apply(mu, b int, va, vb float64) {
	a := st.assign[mu]
	st.groups[a] = remove(st.groups[a], mu)
	st.groups[b] = insertSorted(st.groups[b], mu)
	st.assign[mu] = b
	st.vals[a] = va
	st.vals[b] = vb
	if st.ge.incremental() {
		st.ge.addSig(st.counts[a], mu, -1)
		st.ge.addSig(st.counts[b], mu, +1)
		st.nsub[a] -= st.ge.count[mu]
		st.nsub[b] += st.ge.count[mu]
		if st.pairs != nil {
			st.ge.addSigPairs(st.pairs[a], mu, -1)
			st.ge.addSigPairs(st.pairs[b], mu, +1)
		}
	}
}

func (st *searchState) score() score {
	sc := score{min: 1}
	for s, g := range st.groups {
		if len(g) == 0 {
			continue
		}
		sc.sum += st.vals[s]
		if st.vals[s] < sc.min {
			sc.min = st.vals[s]
		}
	}
	return sc
}

// scoreWith computes the score if sorts a and b had values va and vb.
func (st *searchState) scoreWith(a int, va float64, emptyA bool, b int, vb float64) score {
	sc := score{min: 1}
	for s, g := range st.groups {
		var val float64
		switch s {
		case a:
			if emptyA {
				continue
			}
			val = va
		case b:
			val = vb
		default:
			if len(g) == 0 {
				continue
			}
			val = st.vals[s]
		}
		sc.sum += val
		if val < sc.min {
			sc.min = val
		}
	}
	return sc
}

// remove returns group g without signature mu (preserving order).
func remove(g []int, mu int) []int {
	out := make([]int, 0, len(g)-1)
	for _, x := range g {
		if x != mu {
			out = append(out, x)
		}
	}
	return out
}

// insertSorted returns group g with mu inserted in ascending order.
func insertSorted(g []int, mu int) []int {
	i := sort.SearchInts(g, mu)
	out := make([]int, 0, len(g)+1)
	out = append(out, g[:i]...)
	out = append(out, mu)
	return append(out, g[i:]...)
}

// localSearch runs steepest-ascent relocation moves until a local
// optimum, the iteration cap, or cancellation.
func (st *searchState) localSearch(maxIters int, cancel <-chan struct{}) error {
	n := len(st.assign)
	incremental := st.ge.incremental()
	for iter := 0; iter < maxIters; iter++ {
		if canceled(cancel) {
			return errCanceled
		}
		curSc := st.score()
		bestSc := curSc
		bestMu, bestSort := -1, -1
		var bestVA, bestVB float64
		for mu := 0; mu < n; mu++ {
			a := st.assign[mu]
			var ga []int
			if !incremental {
				ga = remove(st.groups[a], mu)
			}
			va, err := st.evalRemove(a, mu, ga)
			if err != nil {
				return err
			}
			emptyA := len(st.groups[a]) == 1
			for b := 0; b < st.k; b++ {
				if b == a {
					continue
				}
				var gb []int
				if !incremental {
					gb = insertSorted(st.groups[b], mu)
				}
				vb, err := st.evalInsert(b, mu, gb)
				if err != nil {
					return err
				}
				sc := st.scoreWith(a, va, emptyA, b, vb)
				if sc.better(bestSc) {
					bestSc = sc
					bestMu, bestSort = mu, b
					bestVA, bestVB = va, vb
				}
			}
		}
		if bestMu < 0 {
			return nil
		}
		st.apply(bestMu, bestSort, bestVA, bestVB)
	}
	return nil
}

// greedySeed assigns signatures in decreasing size order, each to the
// sort that yields the best interim score, evaluating only the
// receiving sort per candidate.
func greedySeed(ge *groupEval, k int) (Assignment, error) {
	n := ge.view.NumSignatures()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return ge.count[order[a]] > ge.count[order[b]] })

	assign := make(Assignment, n)
	groups := make([][]int, k)
	vals := make([]float64, k)
	used := 0
	var counts, pairs [][]int64
	var nsub []int64
	var scratch, scratchPairs []int64
	var tp *trackedPairs
	if ge.incremental() {
		counts = make([][]int64, k)
		for s := range counts {
			counts[s] = make([]int64, ge.nProps)
		}
		nsub = make([]int64, k)
		scratch = make([]int64, ge.nProps)
		if ge.pairFn != nil {
			pairs = make([][]int64, k)
			for s := range pairs {
				pairs[s] = make([]int64, len(ge.pairCols))
			}
			scratchPairs = make([]int64, len(ge.pairCols))
			tp = &trackedPairs{view: ge.view, cols: ge.pairCols}
		}
	}
	value := func(cnts, pv []int64, subjects int64) float64 {
		if tp != nil {
			tp.vals = pv
		}
		return ge.valueFrom(cnts, tp, subjects)
	}
	// evalWith scores sort s with mu added.
	evalWith := func(s, mu int) (float64, error) {
		if ge.incremental() {
			copy(scratch, counts[s])
			ge.addSig(scratch, mu, +1)
			var pv []int64
			if pairs != nil {
				copy(scratchPairs, pairs[s])
				ge.addSigPairs(scratchPairs, mu, +1)
				pv = scratchPairs
			}
			return value(scratch, pv, nsub[s]+ge.count[mu]), nil
		}
		return ge.eval(insertSorted(groups[s], mu), nil)
	}
	for _, mu := range order {
		// Placing into any currently-empty sort is symmetric; try only
		// the first one.
		maxTry := used + 1
		if maxTry > k {
			maxTry = k
		}
		bestSort, bestSc := 0, score{min: -1}
		var bestVal float64
		for s := 0; s < maxTry; s++ {
			val, err := evalWith(s, mu)
			if err != nil {
				return nil, err
			}
			// Interim score over placed signatures.
			sc := score{min: 1}
			for q := 0; q < k; q++ {
				var qv float64
				if q == s {
					qv = val
				} else if len(groups[q]) == 0 {
					continue
				} else {
					qv = vals[q]
				}
				sc.sum += qv
				if qv < sc.min {
					sc.min = qv
				}
			}
			if sc.better(bestSc) {
				bestSc = sc
				bestSort = s
				bestVal = val
			}
		}
		if len(groups[bestSort]) == 0 {
			used++
		}
		groups[bestSort] = insertSorted(groups[bestSort], mu)
		vals[bestSort] = bestVal
		assign[mu] = bestSort
		if ge.incremental() {
			ge.addSig(counts[bestSort], mu, +1)
			nsub[bestSort] += ge.count[mu]
			if pairs != nil {
				ge.addSigPairs(pairs[bestSort], mu, +1)
			}
		}
	}
	return assign, nil
}

// mergeSeed builds an assignment agglomeratively: every signature set
// starts as its own sort (σ = 1 for all built-in measures), then the
// pair of sorts whose merge keeps the highest σ is merged until at most
// k sorts remain. This seed directly targets the lowest-k problem: it
// trades sort count against structuredness one merge at a time.
func mergeSeed(ge *groupEval, k int) (Assignment, error) {
	n := ge.view.NumSignatures()
	groups := make([][]int, 0, n)
	for mu := 0; mu < n; mu++ {
		groups = append(groups, []int{mu})
	}
	var counts, pairs [][]int64
	var nsub []int64
	var scratch, scratchPairs []int64
	var tp *trackedPairs
	if ge.incremental() {
		counts = make([][]int64, n)
		nsub = make([]int64, n)
		scratch = make([]int64, ge.nProps)
		if ge.pairFn != nil {
			pairs = make([][]int64, n)
			scratchPairs = make([]int64, len(ge.pairCols))
			tp = &trackedPairs{view: ge.view, cols: ge.pairCols}
		}
		for mu := 0; mu < n; mu++ {
			counts[mu] = make([]int64, ge.nProps)
			ge.addSig(counts[mu], mu, +1)
			nsub[mu] = ge.count[mu]
			if pairs != nil {
				pairs[mu] = make([]int64, len(ge.pairCols))
				ge.addSigPairs(pairs[mu], mu, +1)
			}
		}
	}
	// evalPair scores the merge of groups i and j. Pair counts are
	// additive over disjoint subject sets, so a merge sums the slots.
	evalPair := func(i, j int) (float64, error) {
		if ge.incremental() {
			copy(scratch, counts[i])
			for p, c := range counts[j] {
				scratch[p] += c
			}
			var pv []int64
			if pairs != nil {
				copy(scratchPairs, pairs[i])
				for s, c := range pairs[j] {
					scratchPairs[s] += c
				}
				pv = scratchPairs
			}
			if tp != nil {
				tp.vals = pv
			}
			return ge.valueFrom(scratch, tp, nsub[i]+nsub[j]), nil
		}
		return ge.eval(mergeSorted(groups[i], groups[j]), nil)
	}
	// Merge-score cache: a round's merge only changes scores involving
	// the merged group, so the (i, j) score matrix is computed once and
	// then delta-maintained — O(n²) evaluations across the whole
	// agglomeration instead of O(n³). The cached entries are the exact
	// float64 values evalPair produces and the argmax scan below visits
	// them in the same (i ascending, j ascending, strictly-greater)
	// order as a full rescan, so the merge sequence — and therefore the
	// seed — is bit-identical to the uncached loop. Above the size cap
	// the quadratic matrix isn't worth its memory and the rescan loop
	// runs as before.
	const mergeCacheMaxN = 2048
	var cache [][]float64 // cache[i][j], j > i only
	if n := len(groups); n > k && n <= mergeCacheMaxN {
		cache = make([][]float64, n)
		for i := range cache {
			cache[i] = make([]float64, n)
			for j := i + 1; j < n; j++ {
				val, err := evalPair(i, j)
				if err != nil {
					return nil, err
				}
				cache[i][j] = val
			}
		}
	}
	for len(groups) > k {
		bestI, bestJ, bestVal := -1, -1, -1.0
		for i := 0; i < len(groups); i++ {
			for j := i + 1; j < len(groups); j++ {
				var val float64
				if cache != nil {
					val = cache[i][j]
				} else {
					var err error
					val, err = evalPair(i, j)
					if err != nil {
						return nil, err
					}
				}
				if val > bestVal {
					bestVal = val
					bestI, bestJ = i, j
				}
			}
		}
		groups[bestI] = mergeSorted(groups[bestI], groups[bestJ])
		groups = append(groups[:bestJ], groups[bestJ+1:]...)
		if ge.incremental() {
			for p, c := range counts[bestJ] {
				counts[bestI][p] += c
			}
			nsub[bestI] += nsub[bestJ]
			counts = append(counts[:bestJ], counts[bestJ+1:]...)
			nsub = append(nsub[:bestJ], nsub[bestJ+1:]...)
			if pairs != nil {
				for s, c := range pairs[bestJ] {
					pairs[bestI][s] += c
				}
				pairs = append(pairs[:bestJ], pairs[bestJ+1:]...)
			}
		}
		if cache != nil {
			// Drop row/column bestJ (mirroring the groups deletion), then
			// refresh every score involving the merged group bestI from
			// its updated aggregates.
			cache = append(cache[:bestJ], cache[bestJ+1:]...)
			for i := range cache {
				cache[i] = append(cache[i][:bestJ], cache[i][bestJ+1:]...)
			}
			for j := range groups {
				if j == bestI {
					continue
				}
				lo, hi := bestI, j
				if lo > hi {
					lo, hi = hi, lo
				}
				val, err := evalPair(lo, hi)
				if err != nil {
					return nil, err
				}
				cache[lo][hi] = val
			}
		}
	}
	assign := make(Assignment, n)
	for s, g := range groups {
		for _, mu := range g {
			assign[mu] = s
		}
	}
	return assign, nil
}

// mergeSorted merges two ascending index lists.
func mergeSorted(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// profileSeed clusters signatures around k random centroids by Hamming
// distance on their property bit vectors — a structural seed that often
// lands near "schema-shaped" partitions.
func profileSeed(v *matrix.View, k int, rng *rand.Rand) Assignment {
	n := v.NumSignatures()
	sigs := v.Signatures()
	assign := make(Assignment, n)
	if n == 0 {
		return assign
	}
	centroids := rng.Perm(n)
	if len(centroids) > k {
		centroids = centroids[:k]
	}
	for mu := range assign {
		best, bestD := 0, 1<<30
		for ci, c := range centroids {
			d := bitset.HammingBits(sigs[mu].Bits, sigs[c].Bits)
			if d < bestD {
				bestD = d
				best = ci
			}
		}
		assign[mu] = best
	}
	return assign
}
