package refine

import (
	"repro/internal/bitset"
	"repro/internal/matrix"
)

// WarmStart maps an assignment computed on a previous view onto a new
// view of the same (evolved) dataset, so re-refinement after a batch of
// updates starts from the previous solution instead of from scratch.
// Signatures whose property sets survive unchanged keep their sort; new
// or mutated signatures are seeded into the sort of the Hamming-nearest
// previous signature (distance over property bits, aligned by property
// name so the two views may disagree on columns), ties broken by the
// lowest previous index. Returns nil when assign does not cover prev.
//
// The result uses prev's sort labels; SolveHeuristic folds them into
// [0, k) for the problem at hand (see HeuristicOptions.Warm).
func WarmStart(prev *matrix.View, assign Assignment, next *matrix.View) Assignment {
	if prev == nil || next == nil || len(assign) != prev.NumSignatures() || len(assign) == 0 {
		return nil
	}
	// Align both views' signatures in the union property space.
	union := append([]string(nil), prev.Properties()...)
	seen := make(map[string]bool, len(union))
	for _, p := range union {
		seen[p] = true
	}
	for _, p := range next.Properties() {
		if !seen[p] {
			seen[p] = true
			union = append(union, p)
		}
	}
	unionIdx := make(map[string]int, len(union))
	for i, p := range union {
		unionIdx[p] = i
	}
	lift := func(v *matrix.View) []bitset.Set {
		cols := make([]int, v.NumProperties())
		for i, p := range v.Properties() {
			cols[i] = unionIdx[p]
		}
		out := make([]bitset.Set, v.NumSignatures())
		for i, sg := range v.Signatures() {
			b := bitset.New(len(union))
			sg.Bits.ForEach(func(j int) { b.Set(cols[j]) })
			out[i] = b
		}
		return out
	}
	prevBits := lift(prev)
	nextBits := lift(next)

	exact := make(map[string]int, len(prevBits))
	for i := len(prevBits) - 1; i >= 0; i-- {
		exact[prevBits[i].Key()] = i // lowest index wins
	}
	out := make(Assignment, len(nextBits))
	for i, b := range nextBits {
		if j, ok := exact[b.Key()]; ok {
			out[i] = assign[j]
			continue
		}
		best, bestD := 0, int(^uint(0)>>1)
		for j, pb := range prevBits {
			if d := b.HammingDistance(pb); d < bestD {
				bestD = d
				best = j
			}
		}
		out[i] = assign[best]
	}
	return out
}

// foldAssignment compacts arbitrary sort labels by first appearance and
// folds them into [0, k), so a warm-start seed carrying a previous
// problem's labels is valid for the current one.
func foldAssignment(a Assignment, k int) Assignment {
	relabel := make(map[int]int, k)
	out := make(Assignment, len(a))
	for i, s := range a {
		c, ok := relabel[s]
		if !ok {
			c = len(relabel)
			relabel[s] = c
		}
		out[i] = c % k
	}
	return out
}
