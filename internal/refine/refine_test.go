package refine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
	"repro/internal/ilp"
	"repro/internal/matrix"
	"repro/internal/rules"
)

func mkView(t testing.TB, props []string, rows []string, counts []int) *matrix.View {
	t.Helper()
	var sigs []matrix.Signature
	for i, r := range rows {
		b := bitset.New(len(props))
		for j := range r {
			if r[j] == '1' {
				b.Set(j)
			}
		}
		c := 1
		if counts != nil {
			c = counts[i]
		}
		sigs = append(sigs, matrix.Signature{Bits: b, Count: c})
	}
	v, err := matrix.New(props, sigs)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// aliveDeadView models the DBpedia-Persons shape in miniature: some
// signatures have "death" properties, others do not. Splitting along
// that line yields two perfectly-covered sorts.
func aliveDeadView(t testing.TB) *matrix.View {
	// props: name, birth, death
	return mkView(t,
		[]string{"name", "birth", "death"},
		[]string{"110", "111"},
		[]int{50, 30})
}

func TestEvalAssignment(t *testing.T) {
	v := aliveDeadView(t)
	// Identity: one sort.
	values, min, err := EvalAssignment(rules.CovFunc(), v, Assignment{0, 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if values[1].Value() != 1 { // empty sort is vacuous
		t.Fatalf("empty sort σ = %v", values[1].Value())
	}
	// Split: both sorts fully covered.
	_, min2, err := EvalAssignment(rules.CovFunc(), v, Assignment{0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if min2 != 1 {
		t.Fatalf("split min σ = %v, want 1", min2)
	}
	if min >= min2 {
		t.Fatalf("identity min %v not below split min %v", min, min2)
	}
}

func TestFeasibleExactComparison(t *testing.T) {
	v := aliveDeadView(t)
	ok, err := Feasible(rules.CovFunc(), v, Assignment{0, 1}, 2, 1, 1)
	if err != nil || !ok {
		t.Fatalf("perfect split not feasible at θ=1: ok=%v err=%v", ok, err)
	}
	ok, err = Feasible(rules.CovFunc(), v, Assignment{0, 0}, 2, 1, 1)
	if err != nil || ok {
		t.Fatalf("identity feasible at θ=1: ok=%v err=%v", ok, err)
	}
}

func TestSolveExactFindsPerfectCovSplit(t *testing.T) {
	v := aliveDeadView(t)
	p := &Problem{View: v, Rule: rules.CovRule(), K: 2, Theta1: 1, Theta2: 1}
	ref, ok, err := SolveExact(p, EncodeOptions{SymmetryBreaking: true}, ilp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("no refinement found, want perfect split")
	}
	if ref.MinSigma != 1 {
		t.Fatalf("min σ = %v", ref.MinSigma)
	}
	if ref.Assignment[0] == ref.Assignment[1] {
		t.Fatalf("signatures not split: %v", ref.Assignment)
	}
}

func TestSolveExactInfeasible(t *testing.T) {
	// Three pairwise-incompatible signatures cannot reach σCov = 1 with
	// only 2 sorts.
	v := mkView(t, []string{"a", "b", "c"},
		[]string{"100", "010", "001"}, []int{5, 5, 5})
	p := &Problem{View: v, Rule: rules.CovRule(), K: 2, Theta1: 1, Theta2: 1}
	_, ok, err := SolveExact(p, EncodeOptions{SymmetryBreaking: true}, ilp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("found refinement, want infeasible")
	}
	// With k = 3 it becomes feasible (one signature per sort).
	p.K = 3
	_, ok, err = SolveExact(p, EncodeOptions{SymmetryBreaking: true}, ilp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("k=3 refinement not found")
	}
}

func TestSolveHeuristicMatchesExactOnPerfectSplit(t *testing.T) {
	v := aliveDeadView(t)
	p := &Problem{View: v, Rule: rules.CovRule(), K: 2, Theta1: 1, Theta2: 1}
	ref, ok, err := SolveHeuristic(p, HeuristicOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !ok || ref.MinSigma != 1 {
		t.Fatalf("heuristic missed perfect split: ok=%v min=%v", ok, ref.MinSigma)
	}
}

// bruteForceFeasible enumerates every signature→sort assignment.
func bruteForceFeasible(t testing.TB, fn rules.Func, v *matrix.View, k int, th1, th2 int64) bool {
	n := v.NumSignatures()
	assign := make(Assignment, n)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == n {
			ok, err := Feasible(fn, v, assign, k, th1, th2)
			if err != nil {
				t.Fatal(err)
			}
			return ok
		}
		for s := 0; s < k; s++ {
			assign[i] = s
			if rec(i + 1) {
				return true
			}
		}
		return false
	}
	return rec(0)
}

// Proposition 6.1: the ILP instance is feasible iff a σr-sort
// refinement with threshold θ and at most k sorts exists. Cross-checked
// against brute force over all partitions for random small views,
// rules, k and θ.
func TestQuickProposition61(t *testing.T) {
	testRules := []*rules.Rule{
		rules.CovRule(),
		rules.SimRule(),
		rules.DepRule("p0", "p1"),
		rules.SymDepRule("p0", "p1"),
	}
	f := func(seed int64, ruleIdx, kRaw, thetaRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		r := testRules[int(ruleIdx)%len(testRules)]
		k := int(kRaw)%3 + 1
		th1 := int64(thetaRaw % 101)
		nProps := rng.Intn(2) + 2
		props := make([]string, nProps)
		for i := range props {
			props[i] = "p" + string(rune('0'+i))
		}
		nSigs := rng.Intn(4) + 1
		rows := make([]string, nSigs)
		counts := make([]int, nSigs)
		for i := range rows {
			b := make([]byte, nProps)
			for j := range b {
				b[j] = byte('0' + rng.Intn(2))
			}
			rows[i] = string(b)
			counts[i] = rng.Intn(4) + 1
		}
		v := mkView(t, props, rows, counts)
		p := &Problem{View: v, Rule: r, K: k, Theta1: th1, Theta2: 100}
		_, ilpOK, err := SolveExact(p, EncodeOptions{SymmetryBreaking: rng.Intn(2) == 0}, ilp.Options{})
		if err != nil {
			t.Logf("encode/solve error: %v", err)
			return false
		}
		bfOK := bruteForceFeasible(t, p.EvalFunc(), v, k, th1, 100)
		if ilpOK != bfOK {
			t.Logf("mismatch: ilp=%v bf=%v rule=%s k=%d θ=%d/100 rows=%v counts=%v",
				ilpOK, bfOK, r, k, th1, rows, counts)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestHighestThetaCovSplit(t *testing.T) {
	v := aliveDeadView(t)
	out, err := HighestTheta(v, rules.CovRule(), nil, 2, SearchOptions{Engine: EngineExact, Encode: EncodeOptions{SymmetryBreaking: true}})
	if err != nil {
		t.Fatal(err)
	}
	if out.Theta1 != 100 {
		t.Fatalf("highest θ = %d/100, want 100/100", out.Theta1)
	}
	if out.Refinement.MinSigma != 1 {
		t.Fatalf("min σ = %v", out.Refinement.MinSigma)
	}
	if !out.Exact {
		t.Fatal("outcome not exact")
	}
}

func TestLowestKCov(t *testing.T) {
	// Three incompatible signatures, θ=1 ⇒ k=3.
	v := mkView(t, []string{"a", "b", "c"},
		[]string{"100", "010", "001"}, []int{5, 5, 5})
	out, err := LowestK(v, rules.CovRule(), nil, 1, 1, SearchOptions{Engine: EngineExact, Encode: EncodeOptions{SymmetryBreaking: true}})
	if err != nil {
		t.Fatal(err)
	}
	if out.K != 3 {
		t.Fatalf("lowest k = %d, want 3", out.K)
	}
}

func TestLowestKUnreachable(t *testing.T) {
	// σSim of a diagonal view is 0 for every split finer than singleton
	// sorts; with MaxK = 1 and θ = 0.9 the search must fail.
	v := mkView(t, []string{"a", "b"}, []string{"10", "01"}, []int{5, 5})
	_, err := LowestK(v, rules.SimRule(), nil, 9, 10, SearchOptions{Engine: EngineExact, MaxK: 1})
	if err == nil {
		t.Fatal("expected failure at MaxK=1")
	}
}

func TestHeuristicEngineOnLargerView(t *testing.T) {
	// 20 signatures, clear two-cluster structure.
	rng := rand.New(rand.NewSource(42))
	props := []string{"a", "b", "c", "d", "e", "f"}
	var rows []string
	var counts []int
	for i := 0; i < 10; i++ {
		// Cluster 1: first three properties + noise bit.
		rows = append(rows, "111"+randBits(rng, 1)+"00")
		counts = append(counts, rng.Intn(50)+10)
		// Cluster 2: last three properties + noise bit.
		rows = append(rows, "00"+randBits(rng, 1)+"111")
		counts = append(counts, rng.Intn(50)+10)
	}
	v := mkView(t, props, rows, counts)
	p := &Problem{View: v, Rule: rules.CovRule(), K: 2, Theta1: 80, Theta2: 100}
	ref, _, err := SolveHeuristic(p, HeuristicOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	base := rules.Coverage(v).Value()
	if ref.MinSigma <= base {
		t.Fatalf("heuristic min σ %v did not improve on base %v", ref.MinSigma, base)
	}
}

func randBits(rng *rand.Rand, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('0' + rng.Intn(2))
	}
	return string(b)
}

func TestRefinementSortViews(t *testing.T) {
	v := aliveDeadView(t)
	ref := &Refinement{Assignment: Assignment{1, 1}, K: 2}
	views, idx := ref.SortViews(v)
	if len(views) != 1 || idx[0] != 1 {
		t.Fatalf("views=%d idx=%v", len(views), idx)
	}
	if views[0].NumSubjects() != v.NumSubjects() {
		t.Fatal("subjects lost")
	}
}

func TestProblemValidate(t *testing.T) {
	v := aliveDeadView(t)
	bad := []*Problem{
		{View: nil, Rule: rules.CovRule(), K: 1, Theta2: 1},
		{View: v, Rule: rules.CovRule(), K: 0, Theta2: 1},
		{View: v, Rule: rules.CovRule(), K: 1, Theta1: 2, Theta2: 1},
		{View: v, K: 1, Theta2: 1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid problem", i)
		}
	}
	good := &Problem{View: v, Rule: rules.CovRule(), K: 1, Theta1: 1, Theta2: 2}
	if err := good.Validate(); err != nil {
		t.Errorf("valid problem rejected: %v", err)
	}
}

func BenchmarkSolveExactCovK2(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	props := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	var rows []string
	var counts []int
	for i := 0; i < 16; i++ {
		rows = append(rows, randBits(rng, 8))
		counts = append(counts, rng.Intn(100)+1)
	}
	v := mkView(b, props, rows, counts)
	p := &Problem{View: v, Rule: rules.CovRule(), K: 2, Theta1: 60, Theta2: 100}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := SolveExact(p, EncodeOptions{SymmetryBreaking: true}, ilp.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveHeuristicCovK4(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	props := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	var rows []string
	var counts []int
	for i := 0; i < 40; i++ {
		rows = append(rows, randBits(rng, 8))
		counts = append(counts, rng.Intn(100)+1)
	}
	v := mkView(b, props, rows, counts)
	p := &Problem{View: v, Rule: rules.CovRule(), K: 4, Theta1: 80, Theta2: 100}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := SolveHeuristic(p, HeuristicOptions{Seed: int64(i), Restarts: 2, MaxIters: 30}); err != nil {
			b.Fatal(err)
		}
	}
}
