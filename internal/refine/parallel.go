// Parallel infrastructure for the refinement engine: cancellation
// helpers, exact-vs-heuristic portfolio racing, and the speculative
// probe driver behind HighestTheta and LowestK. All of it is designed
// so that results are bit-identical to the sequential engine: the
// parallelism only changes wall-clock, never outcomes.

package refine

import (
	"errors"
	"sync"
)

// errCanceled marks a restart or probe aborted by cancellation; its
// partial result is discarded, never surfaced to callers.
var errCanceled = errors.New("refine: search canceled")

// canceled reports whether the channel is closed (nil = never).
func canceled(ch <-chan struct{}) bool {
	if ch == nil {
		return false
	}
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// mergedCancel returns a channel closed when either the parent channel
// closes or the returned stop function is called. stop is idempotent
// and must eventually be called to release the merge goroutine.
func mergedCancel(parent <-chan struct{}) (<-chan struct{}, func()) {
	ch := make(chan struct{})
	var once sync.Once
	stop := func() { once.Do(func() { close(ch) }) }
	if parent != nil {
		go func() {
			select {
			case <-parent:
				stop()
			case <-ch:
			}
		}()
	}
	return ch, stop
}

// probeResult is decide's verdict on one feasibility instance.
type probeResult struct {
	ref    *Refinement
	ok     bool
	proven bool
	err    error
}

// raceAuto is the parallel form of the auto engine: the local-search
// and exact engines race with first-decisive-wins cancellation. The
// outcome is deterministic and identical to the sequential auto engine
// (heuristic first, exact only on "not found"):
//
//   - a heuristic witness always wins (in the sequential engine the
//     exact solver would never have run), cancelling the exact solver;
//   - an exact infeasibility proof wins immediately (the heuristic can
//     never produce a witness for a proven-infeasible instance),
//     cancelling the heuristic;
//   - an exact witness, error, or budget exhaustion waits for the
//     heuristic, exactly as the sequential fallback order dictates
//     (the sequential engine only consults the exact solver after the
//     heuristic comes up empty).
//
// The win is wall-clock: on feasible instances the exact solver is cut
// short, and on infeasible ones — which dominate the θ sweep's cost —
// the proof and the doomed restarts overlap instead of running
// back-to-back.
func raceAuto(p *Problem, opts *SearchOptions, cancel <-chan struct{}) probeResult {
	heurCancel, stopHeur := mergedCancel(cancel)
	exactCancel, stopExact := mergedCancel(cancel)
	defer stopHeur()
	defer stopExact()

	heurCh := make(chan probeResult, 1)
	exactCh := make(chan probeResult, 1)
	go func() {
		ref, ok, err := SolveHeuristic(p, heuristicFor(opts, heurCancel))
		heurCh <- probeResult{ref: ref, ok: ok, proven: ok, err: err}
	}()
	go func() {
		encodeOpts := opts.Encode
		if encodeOpts.MaxTVars == 0 {
			encodeOpts.MaxTVars = 50_000
		}
		solver := opts.Solver
		solver.Cancel = exactCancel
		ref, ok, err := SolveExact(p, encodeOpts, solver)
		exactCh <- probeResult{ref: ref, ok: ok, proven: err == nil, err: err}
	}()

	var exact *probeResult
	var heur *probeResult
	for heur == nil {
		select {
		case h := <-heurCh:
			heur = &h
		case e := <-exactCh:
			exact = &e
			if e.err == nil && !e.ok {
				// Proven infeasible: no witness exists, so the heuristic
				// cannot change the verdict. Stop it and return.
				return probeResult{ok: false, proven: true}
			}
			// Feasible, undecided, or errored: the heuristic's verdict
			// has deterministic priority; keep waiting for it. (In the
			// sequential engine the exact solver only ever runs after
			// the heuristic, so its error must not preempt here.)
		}
	}
	if heur.err != nil {
		// Wait for the exact engine's genuine verdict: an infeasibility
		// proof deterministically overrides the heuristic's evaluation
		// error (the verdict must not depend on which engine reported
		// first); anything else surfaces the error, as the sequential
		// engine would.
		if exact == nil {
			e := <-exactCh
			exact = &e
		}
		if exact.err == nil && !exact.ok {
			return probeResult{ok: false, proven: true}
		}
		return probeResult{err: heur.err}
	}
	if heur.ok {
		// Witness found: identical to the sequential engine, where the
		// exact solver would never have started.
		return probeResult{ref: heur.ref, ok: true, proven: true}
	}
	if exact == nil {
		e := <-exactCh
		exact = &e
	}
	if exact.err == ErrBudget || exact.err == ErrTooLarge {
		// Undecided: report the heuristic's best, unproven.
		return probeResult{ref: heur.ref, ok: false, proven: false}
	}
	if exact.err != nil {
		return probeResult{err: exact.err}
	}
	if !exact.ok {
		return probeResult{ok: false, proven: true}
	}
	return probeResult{ref: exact.ref, ok: true, proven: true}
}

// sweep drives decide over the probe sequence problem(0), problem(1), …
// with bounded speculative look-ahead: up to opts.workers() probes run
// concurrently, results are consumed strictly in step order, and the
// sweep ends at the first step whose result satisfies stopOn (or when
// consume says stop). Probes past a stop-worthy result are cancelled
// and their results discarded, so the consumed prefix — and therefore
// the outcome — is bit-identical to the sequential loop: every consumed
// probe ran to completion, uncancelled, on the same instance the
// sequential sweep would have solved.
func sweep(opts *SearchOptions, steps int, problem func(int) *Problem,
	stopOn func(probeResult) bool, consume func(int, probeResult) (bool, error)) error {
	workers := opts.workers()
	if workers > steps {
		workers = steps
	}
	if workers <= 1 {
		for i := 0; i < steps; i++ {
			r := decide(problem(i), opts, opts.Cancel)
			stop, err := consume(i, r)
			if err != nil || stop {
				return err
			}
		}
		return nil
	}
	// Split the restart-level parallelism across the concurrent probes:
	// without this, each of the `workers` probes would default to
	// `workers` restart goroutines of its own (plus the racing exact
	// solver), oversubscribing the CPU ~workers-fold and starving the
	// critical-path probe. Worker counts never affect outcomes, so the
	// split is free to be a static estimate.
	probeOpts := *opts
	if probeOpts.Heuristic.Workers == 0 {
		per := opts.workers() / workers
		if per < 1 {
			per = 1
		}
		probeOpts.Heuristic.Workers = per
	}
	for lo := 0; lo < steps; lo += workers {
		n := steps - lo
		if n > workers {
			n = workers
		}
		results := make([]probeResult, n)
		cancels := make([]func(), n)
		done := make(chan int, n)
		for j := 0; j < n; j++ {
			ch, stop := mergedCancel(opts.Cancel)
			cancels[j] = stop
			go func(j int, ch <-chan struct{}) {
				results[j] = decide(problem(lo+j), &probeOpts, ch)
				done <- j
			}(j, ch)
		}
		// As soon as some probe is stop-worthy, probes above it cannot
		// be consumed; cancel them so they stop burning cycles. Probes
		// below it are unaffected (one of them may still be the true,
		// lower stopping step).
		for c := 0; c < n; c++ {
			j := <-done
			if stopOn(results[j]) {
				for q := j + 1; q < n; q++ {
					cancels[q]()
				}
			}
		}
		for _, stop := range cancels {
			stop() // release the merge goroutines
		}
		for j := 0; j < n; j++ {
			stop, err := consume(lo+j, results[j])
			if err != nil || stop {
				return err
			}
		}
	}
	return nil
}
