package refine

import (
	"strings"
	"testing"

	"repro/internal/ilp"
	"repro/internal/rules"
)

func TestEncodeStructure(t *testing.T) {
	v := aliveDeadView(t) // 2 signatures, 3 properties
	p := &Problem{View: v, Rule: rules.CovRule(), K: 2, Theta1: 1, Theta2: 1}
	enc, err := Encode(p, EncodeOptions{SymmetryBreaking: true})
	if err != nil {
		t.Fatal(err)
	}
	// X: k×|Λ| = 4, U: k×|P| = 6, T: k×|τ|. Cov has one variable, so τ
	// ranges over all (signature, property) pairs with positive count:
	// 2 × 3 = 6 → 12 T variables.
	wantVars := 4 + 6 + 12
	if enc.Model.NumVars() != wantVars {
		t.Fatalf("vars = %d, want %d", enc.Model.NumVars(), wantVars)
	}
	if len(enc.Taus) != 6 {
		t.Fatalf("taus = %d, want 6", len(enc.Taus))
	}
	// Every τ total must be positive and ≥ its favorable count.
	for i := range enc.Taus {
		if enc.Tot[i] <= 0 || enc.Fav[i] < 0 || enc.Fav[i] > enc.Tot[i] {
			t.Fatalf("τ %d: fav=%d tot=%d", i, enc.Fav[i], enc.Tot[i])
		}
	}
	// Symmetry breaking adds exactly k−1 hash constraints.
	symCount := 0
	for _, c := range enc.Model.Constraints() {
		if strings.HasPrefix(c.Name, "sym[") {
			symCount++
		}
	}
	if symCount != 1 {
		t.Fatalf("symmetry constraints = %d, want 1", symCount)
	}
}

func TestEncodeMaxTVars(t *testing.T) {
	v := aliveDeadView(t)
	p := &Problem{View: v, Rule: rules.CovRule(), K: 2, Theta1: 1, Theta2: 1}
	if _, err := Encode(p, EncodeOptions{MaxTVars: 3}); err != ErrTooLarge {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestEncodeRequiresRule(t *testing.T) {
	v := aliveDeadView(t)
	p := &Problem{View: v, Func: rules.CovFunc(), K: 2, Theta1: 1, Theta2: 1}
	if _, err := Encode(p, EncodeOptions{}); err == nil {
		t.Fatal("encoding without a rule accepted")
	}
}

func TestDecodeAssignmentErrors(t *testing.T) {
	v := aliveDeadView(t)
	p := &Problem{View: v, Rule: rules.CovRule(), K: 2, Theta1: 1, Theta2: 1}
	enc, err := Encode(p, EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]int64, enc.Model.NumVars())
	// No placement at all.
	if _, err := enc.DecodeAssignment(vals); err == nil {
		t.Fatal("unplaced signature accepted")
	}
	// Double placement.
	vals[enc.X[0][0]] = 1
	vals[enc.X[1][0]] = 1
	vals[enc.X[0][1]] = 1
	if _, err := enc.DecodeAssignment(vals); err == nil {
		t.Fatal("double placement accepted")
	}
}

// The solver must respect the "closed under signatures" semantics: the
// decoded assignment moves whole signature sets, never single subjects.
// (Implicit in the encoding — X is indexed by signature — but asserted
// here as the Definition 4.2 invariant.)
func TestExactSolutionSignatureClosed(t *testing.T) {
	v := aliveDeadView(t)
	p := &Problem{View: v, Rule: rules.CovRule(), K: 2, Theta1: 1, Theta2: 1}
	ref, ok, err := SolveExact(p, EncodeOptions{}, ilp.Options{})
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if len(ref.Assignment) != v.NumSignatures() {
		t.Fatalf("assignment length %d", len(ref.Assignment))
	}
	views, _ := ref.SortViews(v)
	total := 0
	for _, sv := range views {
		total += sv.NumSubjects()
	}
	if total != v.NumSubjects() {
		t.Fatalf("partition lost subjects: %d vs %d", total, v.NumSubjects())
	}
}

// The threshold inequality must use exact integer arithmetic: a ratio
// exactly at θ is feasible, one just below is not.
func TestEncodeThresholdExactness(t *testing.T) {
	// One signature with 3/4 coverage: σCov = 3/4 exactly (4 subjects,
	// each has 3 of 4 used properties? Construct: two signatures sharing
	// 4 props such that together Ones=6, N=2, used=4 → 6/8 = 3/4.
	v := mkView(t, []string{"a", "b", "c", "d"},
		[]string{"1110", "1101"}, []int{1, 1})
	p := &Problem{View: v, Rule: rules.CovRule(), K: 1, Theta1: 3, Theta2: 4}
	_, ok, err := SolveExact(p, EncodeOptions{}, ilp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("σ exactly at threshold rejected")
	}
	p.Theta1, p.Theta2 = 30001, 40000 // one-in-40000 above 3/4
	_, ok, err = SolveExact(p, EncodeOptions{}, ilp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("σ below threshold accepted")
	}
}

func TestLowestKDownwardMatchesUpward(t *testing.T) {
	v := mkView(t, []string{"a", "b", "c"},
		[]string{"100", "010", "001", "110"}, []int{5, 5, 5, 5})
	up, err := LowestK(v, rules.CovRule(), nil, 1, 1, SearchOptions{Engine: EngineExact})
	if err != nil {
		t.Fatal(err)
	}
	down, err := LowestK(v, rules.CovRule(), nil, 1, 1, SearchOptions{Engine: EngineExact, Downward: true})
	if err != nil {
		t.Fatal(err)
	}
	if up.K != down.K {
		t.Fatalf("upward k=%d, downward k=%d", up.K, down.K)
	}
	// Both witnesses must verify at θ=1.
	for _, out := range []*Outcome{up, down} {
		ok, err := Feasible(rules.CovFunc(), v, out.Refinement.Assignment, out.Refinement.K, 1, 1)
		if err != nil || !ok {
			t.Fatalf("witness fails: ok=%v err=%v", ok, err)
		}
	}
}

func TestHighestThetaHonorsEngineHeuristic(t *testing.T) {
	v := aliveDeadView(t)
	out, err := HighestTheta(v, rules.CovRule(), nil, 2, SearchOptions{Engine: EngineHeuristic})
	if err != nil {
		t.Fatal(err)
	}
	// The perfect split is easy for the heuristic too.
	if out.Theta1 != 100 {
		t.Fatalf("heuristic highest θ = %d", out.Theta1)
	}
}

func TestMergeSeedProducesValidAssignment(t *testing.T) {
	v := mkView(t, []string{"a", "b", "c", "d"},
		[]string{"1100", "1110", "0011", "0111", "1000"}, []int{10, 8, 6, 4, 2})
	assign, err := mergeSeed(newGroupEval(rules.CovFunc(), v), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(assign) != 5 {
		t.Fatalf("assignment length %d", len(assign))
	}
	used := map[int]bool{}
	for _, s := range assign {
		if s < 0 || s >= 2 {
			t.Fatalf("sort %d out of range", s)
		}
		used[s] = true
	}
	if len(used) != 2 {
		t.Fatalf("merge seed used %d sorts, want 2", len(used))
	}
}
