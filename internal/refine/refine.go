// Package refine implements sort refinements (Section 4 of the paper):
// entity-preserving, signature-closed partitions of a dataset into
// implicit sorts whose structuredness clears a threshold. It contains
// the paper's ILP encoding (Section 6) solved exactly by internal/ilp,
// a local-search engine for paper-scale instances, and the two search
// strategies of Section 7 (highest θ for fixed k, lowest k for fixed θ).
package refine

import (
	"fmt"

	"repro/internal/matrix"
	"repro/internal/rules"
)

// Assignment maps each signature index of a view to an implicit sort in
// [0, k). Because implicit sorts must be closed under signatures
// (Definition 4.2), an assignment of signature sets fully determines an
// entity-preserving partition.
type Assignment []int

// Clone returns a copy.
func (a Assignment) Clone() Assignment { return append(Assignment(nil), a...) }

// Refinement is a computed sort refinement.
type Refinement struct {
	// Assignment maps signatures to implicit sorts.
	Assignment Assignment
	// K is the number of implicit sorts (including empty ones).
	K int
	// Values holds σ(Di) for each implicit sort (vacuous 1 for empty).
	Values []rules.Ratio
	// MinSigma is the minimum σ over non-empty implicit sorts (1 if all
	// empty, which cannot happen for non-empty views).
	MinSigma float64
	// Exact records whether the result came from the exact ILP engine.
	Exact bool
}

// SortViews materializes the implicit sorts as subset views of v,
// omitting empty sorts. The i-th returned view corresponds to the i-th
// non-empty sort index in ascending order; indices are also returned.
func (r *Refinement) SortViews(v *matrix.View) ([]*matrix.View, []int) {
	groups := make([][]int, r.K)
	for sig, sort := range r.Assignment {
		groups[sort] = append(groups[sort], sig)
	}
	var out []*matrix.View
	var idx []int
	for i, g := range groups {
		if len(g) > 0 {
			out = append(out, v.Subset(g))
			idx = append(idx, i)
		}
	}
	return out, idx
}

// EvalAssignment computes σ per implicit sort and the minimum over
// non-empty sorts.
func EvalAssignment(fn rules.Func, v *matrix.View, assign Assignment, k int) ([]rules.Ratio, float64, error) {
	if len(assign) != v.NumSignatures() {
		return nil, 0, fmt.Errorf("refine: assignment covers %d of %d signatures", len(assign), v.NumSignatures())
	}
	groups := make([][]int, k)
	for sig, sort := range assign {
		if sort < 0 || sort >= k {
			return nil, 0, fmt.Errorf("refine: signature %d assigned to sort %d outside [0,%d)", sig, sort, k)
		}
		groups[sort] = append(groups[sort], sig)
	}
	values := make([]rules.Ratio, k)
	min := 1.0
	for i, g := range groups {
		if len(g) == 0 {
			values[i] = rules.NewRatio(0, 0) // vacuous
			continue
		}
		r, err := fn.Eval(v.Subset(g))
		if err != nil {
			return nil, 0, err
		}
		values[i] = r
		if val := r.Value(); val < min {
			min = val
		}
	}
	return values, min, nil
}

// Feasible reports whether the assignment is a σ-sort refinement with
// threshold θ1/θ2, using exact rational comparison per sort.
func Feasible(fn rules.Func, v *matrix.View, assign Assignment, k int, theta1, theta2 int64) (bool, error) {
	groups := make([][]int, k)
	for sig, sort := range assign {
		groups[sort] = append(groups[sort], sig)
	}
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		r, err := fn.Eval(v.Subset(g))
		if err != nil {
			return false, err
		}
		if !r.AtLeast(theta1, theta2) {
			return false, nil
		}
	}
	return true, nil
}

// Problem describes one EXISTSSORTREFINEMENT(r) instance: does view V
// admit a σr-sort refinement with threshold θ1/θ2 and at most K sorts?
type Problem struct {
	View   *matrix.View
	Rule   *rules.Rule // required by the exact ILP engine
	Func   rules.Func  // evaluator; derived from Rule if nil
	K      int
	Theta1 int64
	Theta2 int64
}

// EvalFunc returns the problem's evaluator, deriving the fastest exact
// one from the rule when unset.
func (p *Problem) EvalFunc() rules.Func {
	if p.Func != nil {
		return p.Func
	}
	if p.Rule != nil {
		return rules.FuncForRule(p.Rule)
	}
	return nil
}

// Validate checks the problem is well-formed.
//
// No evaluator is rejected on Workers > 1: every measure the engine
// can hold — closed forms, counts/pair-counts kernels, compiled rules,
// and generic rules through the (optionally signature-parallel) rough
// counter — is a pure, deterministic function of the view, so parallel
// search needs no determinism guard. Measures that are neither
// rules.CountsFunc nor rules.PairCountsFunc simply score groups
// through subset views instead of delta-maintained aggregates; they
// are slower, not unsafe.
func (p *Problem) Validate() error {
	if p.View == nil {
		return fmt.Errorf("refine: nil view")
	}
	if p.K < 1 {
		return fmt.Errorf("refine: k = %d < 1", p.K)
	}
	if p.Theta2 <= 0 || p.Theta1 < 0 || p.Theta1 > p.Theta2 {
		return fmt.Errorf("refine: threshold %d/%d outside [0,1]", p.Theta1, p.Theta2)
	}
	if p.EvalFunc() == nil {
		return fmt.Errorf("refine: neither Rule nor Func set")
	}
	return nil
}
