package refine

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
	"repro/internal/matrix"
	"repro/internal/rules"
)

func TestInsertSortedAndRemove(t *testing.T) {
	g := []int{}
	for _, x := range []int{5, 1, 3} {
		g = insertSorted(g, x)
	}
	if len(g) != 3 || g[0] != 1 || g[1] != 3 || g[2] != 5 {
		t.Fatalf("insertSorted = %v", g)
	}
	g = remove(g, 3)
	if len(g) != 2 || g[0] != 1 || g[1] != 5 {
		t.Fatalf("remove = %v", g)
	}
	g = remove(g, 99) // absent element: no-op
	if len(g) != 2 {
		t.Fatalf("remove(absent) = %v", g)
	}
}

// Property: insertSorted keeps lists sorted and remove inverts it.
func TestQuickInsertRemove(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var g []int
		seen := map[int]bool{}
		for i := 0; i < 30; i++ {
			x := rng.Intn(100)
			if seen[x] {
				continue
			}
			seen[x] = true
			g = insertSorted(g, x)
		}
		for i := 1; i < len(g); i++ {
			if g[i-1] >= g[i] {
				return false
			}
		}
		for x := range seen {
			g = remove(g, x)
		}
		return len(g) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// The incremental search state must agree with a from-scratch
// re-evaluation after any sequence of moves, on both the counts-based
// delta path (Cov, Sim) and the generic subset-view path.
func TestSearchStateIncrementalConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	props := []string{"a", "b", "c", "d"}
	var sigs []matrix.Signature
	for i := 0; i < 10; i++ {
		b := bitset.New(4)
		for j := 0; j < 4; j++ {
			if rng.Intn(2) == 1 {
				b.Set(j)
			}
		}
		if b.Count() == 0 {
			b.Set(i % 4)
		}
		sigs = append(sigs, matrix.Signature{Bits: b, Count: rng.Intn(20) + 1})
	}
	v, err := matrix.New(props, sigs)
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range []rules.Func{
		rules.CovFunc(),                    // counts-based delta path
		rules.SimFunc(),                    // counts-based delta path
		rules.DepFunc("a", "b"),            // generic subset-view path
		rules.RuleFunc{R: rules.CovRule()}, // generic rough-assignment path
	} {
		t.Run(fn.Name(), func(t *testing.T) {
			k := 3
			assign := make(Assignment, v.NumSignatures())
			for i := range assign {
				assign[i] = rng.Intn(k)
			}
			ge := newGroupEval(fn, v)
			st, err := newSearchState(ge, assign.Clone(), k)
			if err != nil {
				t.Fatal(err)
			}
			// Perform random moves through the move path (evalRemove /
			// evalInsert / apply) and compare with EvalAssignment each time.
			for step := 0; step < 25; step++ {
				mu := rng.Intn(v.NumSignatures())
				b := rng.Intn(k)
				a := st.assign[mu]
				if a == b {
					continue
				}
				ga := remove(st.groups[a], mu)
				va, err := st.evalRemove(a, mu, ga)
				if err != nil {
					t.Fatal(err)
				}
				gb := insertSorted(st.groups[b], mu)
				vb, err := st.evalInsert(b, mu, gb)
				if err != nil {
					t.Fatal(err)
				}
				st.apply(mu, b, va, vb)

				values, min, err := EvalAssignment(fn, v, st.assign, k)
				if err != nil {
					t.Fatal(err)
				}
				sc := st.score()
				if diff := sc.min - min; diff > 1e-12 || diff < -1e-12 {
					t.Fatalf("step %d: incremental min %v != recomputed %v", step, sc.min, min)
				}
				sum := 0.0
				for s, g := range st.groups {
					if len(g) > 0 {
						want := values[s].Value()
						if diff := st.vals[s] - want; diff > 1e-12 || diff < -1e-12 {
							t.Fatalf("step %d: sort %d cached σ %v != recomputed %v", step, s, st.vals[s], want)
						}
						sum += st.vals[s]
					}
				}
				if diff := sc.sum - sum; diff > 1e-12 || diff < -1e-12 {
					t.Fatalf("step %d: sum drift", step)
				}
			}
		})
	}
}

func TestScoreOrdering(t *testing.T) {
	a := score{min: 0.9, sum: 1.8}
	b := score{min: 0.8, sum: 5.0}
	if !a.better(b) || b.better(a) {
		t.Fatal("min must dominate sum")
	}
	c := score{min: 0.9, sum: 2.0}
	if !c.better(a) {
		t.Fatal("sum must break min ties")
	}
	if a.better(a) {
		t.Fatal("score better than itself")
	}
}

func TestProfileSeedBounds(t *testing.T) {
	v := aliveDeadView(t)
	rng := rand.New(rand.NewSource(1))
	for k := 1; k <= 4; k++ {
		assign := profileSeed(v, k, rng)
		if len(assign) != v.NumSignatures() {
			t.Fatalf("k=%d: length %d", k, len(assign))
		}
		for _, s := range assign {
			if s < 0 || s >= k {
				t.Fatalf("k=%d: sort %d out of range", k, s)
			}
		}
	}
}

func TestGreedySeedRespectsK(t *testing.T) {
	v := mkView(t, []string{"a", "b", "c"},
		[]string{"100", "010", "001"}, []int{5, 5, 5})
	for k := 1; k <= 3; k++ {
		assign, err := greedySeed(newGroupEval(rules.CovFunc(), v), k)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range assign {
			if s < 0 || s >= k {
				t.Fatalf("k=%d: sort %d out of range", k, s)
			}
		}
		// With k=3 and three incompatible signatures, greedy must use all
		// three sorts (σ = 1 each).
		if k == 3 {
			used := map[int]bool{}
			for _, s := range assign {
				used[s] = true
			}
			if len(used) != 3 {
				t.Fatalf("greedy used %d sorts, want 3", len(used))
			}
		}
	}
}

// naiveMergeSeed is the reference O(n³)-evaluation agglomeration the
// cached mergeSeed must reproduce merge for merge: rescan every pair
// each round, score it from scratch on the merged subset, and take the
// first strictly-best pair in (i, j) scan order.
func naiveMergeSeed(ge *groupEval, k int) (Assignment, error) {
	n := ge.view.NumSignatures()
	groups := make([][]int, 0, n)
	for mu := 0; mu < n; mu++ {
		groups = append(groups, []int{mu})
	}
	for len(groups) > k {
		bestI, bestJ, bestVal := -1, -1, -1.0
		for i := 0; i < len(groups); i++ {
			for j := i + 1; j < len(groups); j++ {
				val, err := ge.eval(mergeSorted(groups[i], groups[j]), nil)
				if err != nil {
					return nil, err
				}
				if val > bestVal {
					bestVal = val
					bestI, bestJ = i, j
				}
			}
		}
		groups[bestI] = mergeSorted(groups[bestI], groups[bestJ])
		groups = append(groups[:bestJ], groups[bestJ+1:]...)
	}
	assign := make(Assignment, n)
	for s, g := range groups {
		for _, mu := range g {
			assign[mu] = s
		}
	}
	return assign, nil
}

// The score-matrix cache inside mergeSeed must not change a single
// merge decision: the cached values are the exact floats a rescan
// computes and the argmax scan order is unchanged, so the seed must be
// identical to the naive reference on every measure family and k.
func TestMergeSeedCacheMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	props := make([]string, 8)
	for i := range props {
		props[i] = fmt.Sprintf("p%d", i)
	}
	var sigs []matrix.Signature
	for i := 0; i < 26; i++ {
		b := bitset.New(len(props))
		for j := range props {
			if rng.Intn(3) == 0 {
				b.Set(j)
			}
		}
		if b.Count() == 0 {
			b.Set(i % len(props))
		}
		sigs = append(sigs, matrix.Signature{Bits: b, Count: rng.Intn(30) + 1})
	}
	v, err := matrix.New(props, sigs)
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range []rules.Func{
		rules.CovFunc(),                    // counts-based delta path
		rules.DepFunc("p0", "p1"),          // pair-counts path
		rules.RuleFunc{R: rules.CovRule()}, // generic subset-view path
	} {
		for _, k := range []int{1, 2, 5, 11} {
			ge := newGroupEval(fn, v)
			got, err := mergeSeed(ge, k)
			if err != nil {
				t.Fatalf("%s k=%d: %v", fn.Name(), k, err)
			}
			want, err := naiveMergeSeed(newGroupEval(fn, v), k)
			if err != nil {
				t.Fatalf("%s k=%d: naive: %v", fn.Name(), k, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s k=%d: cached mergeSeed diverged\n got %v\nwant %v", fn.Name(), k, got, want)
			}
		}
	}
}
