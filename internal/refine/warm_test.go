package refine

import (
	"testing"

	"repro/internal/bitset"
	"repro/internal/matrix"
	"repro/internal/rules"
)

func mustView(t *testing.T, props []string, rows ...matrix.Signature) *matrix.View {
	t.Helper()
	v, err := matrix.New(props, rows)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func sig(n, count int, idx ...int) matrix.Signature {
	return matrix.Signature{Bits: bitset.FromIndices(n, idx...), Count: count}
}

func TestWarmStartIdentity(t *testing.T) {
	props := []string{"p", "q", "r"}
	v := mustView(t, props, sig(3, 5, 0, 1), sig(3, 3, 0, 1, 2), sig(3, 4, 2))
	assign := Assignment{0, 0, 1}
	got := WarmStart(v, assign, v)
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	for i := range got {
		if got[i] != assign[i] {
			t.Fatalf("identity warm start changed assignment: %v -> %v", assign, got)
		}
	}
}

func TestWarmStartNewSignatureNearest(t *testing.T) {
	props := []string{"p", "q", "r"}
	prev := mustView(t, props, sig(3, 5, 0, 1), sig(3, 3, 0, 1, 2), sig(3, 4, 2))
	// Sorted by count: [0]=110×5, [1]=001×4, [2]=111×3.
	assign := Assignment{0, 1, 0}
	// Next adds an all-zero signature: Hamming-nearest is 001 (d=1,
	// unique), which sits in sort 1.
	next := mustView(t, props, sig(3, 5, 0, 1), sig(3, 3, 0, 1, 2), sig(3, 4, 2), sig(3, 2))
	got := WarmStart(prev, assign, next)
	if got == nil {
		t.Fatal("nil warm start")
	}
	for i, sg := range next.Signatures() {
		j := prev.SignatureOf(sg.Bits)
		if j >= 0 {
			if got[i] != assign[j] {
				t.Fatalf("surviving signature %d moved: got sort %d, want %d", i, got[i], assign[j])
			}
			continue
		}
		if got[i] != 1 {
			t.Fatalf("new all-zero signature seeded into sort %d, want 1", got[i])
		}
	}
}

func TestWarmStartAcrossPropertySpaces(t *testing.T) {
	prev := mustView(t, []string{"p", "q"}, sig(2, 5, 0), sig(2, 3, 0, 1))
	// Next view gains a column "s"; the surviving {p} and {p,q}
	// patterns must keep their sorts despite different capacities.
	next := mustView(t, []string{"p", "q", "s"},
		sig(3, 5, 0), sig(3, 3, 0, 1), sig(3, 1, 2))
	assign := Assignment{0, 1}
	got := WarmStart(prev, assign, next)
	if got == nil {
		t.Fatal("nil warm start")
	}
	for i, sg := range next.Signatures() {
		names := map[string]bool{}
		sg.Bits.ForEach(func(j int) { names[next.Properties()[j]] = true })
		switch {
		case len(names) == 1 && names["p"]:
			if got[i] != 0 {
				t.Fatalf("{p} moved to sort %d", got[i])
			}
		case len(names) == 2:
			if got[i] != 1 {
				t.Fatalf("{p,q} moved to sort %d", got[i])
			}
		}
	}
}

func TestWarmStartRejectsMismatch(t *testing.T) {
	v := mustView(t, []string{"p"}, sig(1, 2, 0))
	if got := WarmStart(v, Assignment{0, 1}, v); got != nil {
		t.Fatalf("mismatched assignment accepted: %v", got)
	}
	if got := WarmStart(nil, Assignment{0}, v); got != nil {
		t.Fatal("nil prev accepted")
	}
}

func TestFoldAssignment(t *testing.T) {
	a := Assignment{7, 7, 3, 9, 3}
	got := foldAssignment(a, 2)
	want := Assignment{0, 0, 1, 0, 1} // labels 7→0, 3→1, 9→2%2=0
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fold = %v, want %v", got, want)
		}
	}
}

// A feasible warm seed lets restart 0 certify feasibility without local
// search, and the answer is the warm assignment itself.
func TestSolveHeuristicWarmSeed(t *testing.T) {
	props := []string{"p", "q", "r", "s"}
	v := mustView(t, props,
		sig(4, 10, 0, 1), sig(4, 9, 0, 1, 2), sig(4, 8, 3), sig(4, 7, 2, 3))
	warm := Assignment{0, 0, 1, 1}
	p := &Problem{View: v, Func: rules.CovFunc(), K: 2, Theta1: 70, Theta2: 100}
	ref, ok, err := SolveHeuristic(p, HeuristicOptions{
		Restarts: 1, Seed: 42, TargetEarlyExit: true, Warm: warm,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("warm-seeded solve found no witness")
	}
	for i := range warm {
		if ref.Assignment[i] != warm[i] {
			t.Fatalf("assignment %v, want warm seed %v", ref.Assignment, warm)
		}
	}
}
