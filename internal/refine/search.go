package refine

import (
	"fmt"
	"time"

	"repro/internal/ilp"
	"repro/internal/matrix"
	"repro/internal/rules"
)

// Engine selects how feasibility instances are decided.
type Engine int

// Engines.
const (
	// EngineAuto uses the exact ILP solver when the instance is small
	// enough (heuristically judged by signature count and rule arity)
	// and local search otherwise.
	EngineAuto Engine = iota
	// EngineExact always uses the ILP encoding + pseudo-Boolean solver.
	EngineExact
	// EngineHeuristic always uses local search (no infeasibility proofs).
	EngineHeuristic
)

// SearchOptions configures the strategy drivers.
type SearchOptions struct {
	Engine    Engine
	Encode    EncodeOptions
	Solver    ilp.Options
	Heuristic HeuristicOptions
	// ThetaStep is the sweep granularity for HighestTheta, as a
	// denominator: step = 1/ThetaStep (default 100, i.e. 0.01 as in the
	// paper's experiments).
	ThetaStep int64
	// MaxK bounds the lowest-k search (default: number of signatures).
	MaxK int
	// Downward searches LowestK from high k to low, which the paper
	// found more efficient for some setups (Section 7): the identity
	// refinement with one sort per signature set is always feasible, so
	// the search walks down through feasible instances (fast witnesses)
	// instead of up through infeasible ones (slow proofs).
	Downward bool
}

func (o *SearchOptions) defaults() {
	if o.ThetaStep == 0 {
		o.ThetaStep = 100
	}
	if o.Solver.MaxDecisions == 0 {
		o.Solver.MaxDecisions = 2_000_000
	}
}

// Outcome describes one strategy run.
type Outcome struct {
	Refinement *Refinement
	// Theta1/Theta2 is the threshold the refinement satisfies.
	Theta1, Theta2 int64
	// K is the number of implicit sorts allowed.
	K int
	// Elapsed is total solve time across all instances tried.
	Elapsed time.Duration
	// Instances counts feasibility instances solved during the search.
	Instances int
	// Exact reports whether every decision came from the exact engine.
	Exact bool
}

// decide solves one feasibility instance with the selected engine.
// proven reports whether the answer is certified: a feasible answer is
// always proven (the witness is verified exactly); an infeasible answer
// is proven only when the exact engine completed.
func decide(p *Problem, opts *SearchOptions) (ref *Refinement, ok, proven bool, err error) {
	switch opts.Engine {
	case EngineExact:
		ref, ok, err := SolveExact(p, opts.Encode, opts.Solver)
		if err == ErrBudget || err == ErrTooLarge {
			// Fall back to the heuristic: it can still certify feasibility
			// (the witness is verified exactly) but not infeasibility.
			ref, ok, err := SolveHeuristic(p, heuristicFor(opts))
			return ref, ok, ok, err
		}
		return ref, ok, err == nil, err
	case EngineHeuristic:
		ref, ok, err := SolveHeuristic(p, heuristicFor(opts))
		return ref, ok, ok, err
	default: // EngineAuto
		// Witness-first: the local search certifies feasibility cheaply;
		// the exact engine is only needed when no witness is found —
		// either to recover one the heuristic missed or to prove
		// infeasibility. This mirrors the paper's observation that
		// infeasible instances dominate the cost of the θ sweep.
		ref, ok, err := SolveHeuristic(p, heuristicFor(opts))
		if err != nil || ok {
			return ref, ok, ok, err
		}
		if !exactTractable(p) {
			return ref, false, false, nil
		}
		encodeOpts := opts.Encode
		if encodeOpts.MaxTVars == 0 {
			encodeOpts.MaxTVars = 50_000
		}
		exRef, exOK, exErr := SolveExact(p, encodeOpts, opts.Solver)
		if exErr == ErrBudget || exErr == ErrTooLarge {
			return ref, false, false, nil // undecided: report the heuristic's best
		}
		if exErr != nil {
			return nil, false, false, exErr
		}
		return exRef, exOK, true, nil
	}
}

func heuristicFor(opts *SearchOptions) HeuristicOptions {
	h := opts.Heuristic
	h.TargetEarlyExit = true
	return h
}

// exactTractable pre-filters instances whose rough-assignment
// enumeration alone would be too expensive to even attempt encoding.
// Instances passing this filter are encoded with a T-variable cap (see
// decide), which measures the true pruned size.
func exactTractable(p *Problem) bool {
	if p.Rule == nil {
		return false
	}
	n := len(p.Rule.Vars())
	sigs := p.View.NumSignatures()
	props := p.View.NumProperties()
	taus := 1
	for i := 0; i < n; i++ {
		taus *= sigs * props
		if taus > 2_000_000 {
			return false
		}
	}
	return true
}

// HighestTheta finds, for fixed k, the largest threshold θ (on the
// 1/ThetaStep grid) for which a sort refinement exists — the paper's
// first experimental setting. Following Section 7, the sweep is
// sequential upward from the dataset's own structuredness value (for
// which the trivial one-sort refinement is a witness at k ≥ 1), because
// proving infeasibility is far more expensive than finding a witness.
func HighestTheta(view *matrix.View, rule *rules.Rule, fn rules.Func, k int, opts SearchOptions) (*Outcome, error) {
	opts.defaults()
	p := &Problem{View: view, Rule: rule, Func: fn, K: k}
	if p.EvalFunc() == nil {
		return nil, fmt.Errorf("refine: no rule or func")
	}
	base, err := p.EvalFunc().Eval(view)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	// Start at ⌊σ(D)·step⌋/step: guaranteed feasible with the identity
	// refinement.
	t1 := int64(base.Value() * float64(opts.ThetaStep))
	if t1 < 0 {
		t1 = 0
	}
	identity := make(Assignment, view.NumSignatures())
	values, min, err := EvalAssignment(p.EvalFunc(), view, identity, k)
	if err != nil {
		return nil, err
	}
	out := &Outcome{
		Refinement: &Refinement{Assignment: identity, K: k, Values: values, MinSigma: min, Exact: true},
		Theta1:     t1, Theta2: opts.ThetaStep, K: k, Exact: true,
	}
	for theta := t1 + 1; theta <= opts.ThetaStep; theta++ {
		p.Theta1, p.Theta2 = theta, opts.ThetaStep
		ref, ok, proven, err := decide(p, &opts)
		out.Instances++
		if err != nil {
			return nil, err
		}
		if !ok {
			// Infeasible (proven) or no witness found: stop at the last
			// stored solution, as the paper does.
			if !proven {
				out.Exact = false
			}
			break
		}
		out.Refinement = ref
		out.Theta1 = theta
	}
	out.Elapsed = time.Since(start)
	return out, nil
}

// LowestK finds, for a fixed threshold θ1/θ2, the smallest number k of
// implicit sorts admitting a sort refinement — the paper's second
// experimental setting. The search proceeds upward from k = 1 (the
// paper chooses direction case by case; upward matches its DBpedia
// runs).
func LowestK(view *matrix.View, rule *rules.Rule, fn rules.Func, theta1, theta2 int64, opts SearchOptions) (*Outcome, error) {
	opts.defaults()
	maxK := opts.MaxK
	if maxK <= 0 {
		maxK = view.NumSignatures()
	}
	if opts.Downward {
		return lowestKDownward(view, rule, fn, theta1, theta2, opts, maxK)
	}
	start := time.Now()
	out := &Outcome{Theta1: theta1, Theta2: theta2, Exact: true}
	for k := 1; k <= maxK; k++ {
		p := &Problem{View: view, Rule: rule, Func: fn, K: k, Theta1: theta1, Theta2: theta2}
		ref, ok, proven, err := decide(p, &opts)
		out.Instances++
		_ = ref
		if err != nil {
			return nil, err
		}
		if ok {
			out.Refinement = ref
			out.K = k
			out.Elapsed = time.Since(start)
			return out, nil
		}
		// An unproven "not found" is not an infeasibility proof; the
		// reported lowest k is then only an upper bound.
		if !proven {
			out.Exact = false
		}
	}
	out.Elapsed = time.Since(start)
	return out, fmt.Errorf("refine: no refinement with θ=%d/%d within k ≤ %d", theta1, theta2, maxK)
}

// lowestKDownward walks k from the signature count (always feasible:
// one sort per signature set has σ = 1 for every rule with vacuous or
// full satisfaction on uniform sorts — verified before relying on it)
// down to the last feasible k.
func lowestKDownward(view *matrix.View, rule *rules.Rule, fn rules.Func, theta1, theta2 int64, opts SearchOptions, maxK int) (*Outcome, error) {
	start := time.Now()
	out := &Outcome{Theta1: theta1, Theta2: theta2, Exact: true}
	var lastGood *Refinement
	lastK := 0
	for k := maxK; k >= 1; k-- {
		p := &Problem{View: view, Rule: rule, Func: fn, K: k, Theta1: theta1, Theta2: theta2}
		ref, ok, proven, err := decide(p, &opts)
		out.Instances++
		if err != nil {
			return nil, err
		}
		if !ok {
			if !proven {
				out.Exact = false
			}
			break
		}
		lastGood = ref
		lastK = k
		// Shortcut: if the found refinement uses fewer non-empty sorts
		// than k, relabel it to that count (feasibility is per-sort, so
		// dropping empty sorts preserves it) and continue from there.
		relabel := map[int]int{}
		for _, s := range ref.Assignment {
			if _, seen := relabel[s]; !seen {
				relabel[s] = len(relabel)
			}
		}
		if m := len(relabel); m < k {
			compact := make(Assignment, len(ref.Assignment))
			for i, s := range ref.Assignment {
				compact[i] = relabel[s]
			}
			values, min, err := EvalAssignment(p.EvalFunc(), view, compact, m)
			if err != nil {
				return nil, err
			}
			lastGood = &Refinement{Assignment: compact, K: m, Values: values, MinSigma: min, Exact: ref.Exact}
			lastK = m
			k = m // loop decrement lands on m−1 next
		}
	}
	out.Elapsed = time.Since(start)
	if lastGood == nil {
		return out, fmt.Errorf("refine: no refinement with θ=%d/%d within k ≤ %d", theta1, theta2, maxK)
	}
	out.Refinement = lastGood
	out.K = lastK
	return out, nil
}
