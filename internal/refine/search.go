package refine

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/ilp"
	"repro/internal/matrix"
	"repro/internal/rules"
)

// Engine selects how feasibility instances are decided.
type Engine int

// Engines.
const (
	// EngineAuto uses the exact ILP solver when the instance is small
	// enough (heuristically judged by signature count and rule arity)
	// and local search otherwise.
	EngineAuto Engine = iota
	// EngineExact always uses the ILP encoding + pseudo-Boolean solver.
	EngineExact
	// EngineHeuristic always uses local search (no infeasibility proofs).
	EngineHeuristic
)

// SearchOptions configures the strategy drivers.
type SearchOptions struct {
	Engine    Engine
	Encode    EncodeOptions
	Solver    ilp.Options
	Heuristic HeuristicOptions
	// ThetaStep is the sweep granularity for HighestTheta, as a
	// denominator: step = 1/ThetaStep (default 100, i.e. 0.01 as in the
	// paper's experiments).
	ThetaStep int64
	// MaxK bounds the lowest-k search (default: number of signatures).
	MaxK int
	// Downward searches LowestK from high k to low, which the paper
	// found more efficient for some setups (Section 7): the identity
	// refinement with one sort per signature set is always feasible, so
	// the search walks down through feasible instances (fast witnesses)
	// instead of up through infeasible ones (slow proofs).
	Downward bool
	// Workers sets the parallelism of the refinement engine: concurrent
	// local-search restarts, exact-vs-heuristic portfolio racing in the
	// auto engine, and speculative look-ahead probes in HighestTheta and
	// the upward LowestK. 0 defaults to runtime.GOMAXPROCS(0); 1 forces
	// the fully sequential engine. Outcomes are identical for every
	// value — parallelism changes wall-clock only.
	Workers int
	// Cancel aborts the search when closed. A cancelled search returns
	// its best outcome so far with Exact = false; treat it as undecided.
	Cancel <-chan struct{}
}

func (o *SearchOptions) defaults() {
	if o.ThetaStep == 0 {
		o.ThetaStep = 100
	}
	if o.Solver.MaxDecisions == 0 {
		o.Solver.MaxDecisions = 2_000_000
	}
}

// workers resolves the configured parallelism.
func (o *SearchOptions) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Outcome describes one strategy run.
type Outcome struct {
	Refinement *Refinement
	// Theta1/Theta2 is the threshold the refinement satisfies.
	Theta1, Theta2 int64
	// K is the number of implicit sorts allowed.
	K int
	// Elapsed is total wall-clock time across the search.
	Elapsed time.Duration
	// Instances counts feasibility instances solved during the search.
	// Speculative probes discarded by the parallel engine are not
	// counted, so the figure matches the sequential sweep exactly.
	Instances int
	// Exact reports whether every decision came from the exact engine.
	Exact bool
}

// decide solves one feasibility instance with the selected engine.
// proven reports whether the answer is certified: a feasible answer is
// always proven (the witness is verified exactly); an infeasible answer
// is proven only when the exact engine completed. The cancel channel
// aborts the decision; a cancelled result must be discarded.
func decide(p *Problem, opts *SearchOptions, cancel <-chan struct{}) probeResult {
	switch opts.Engine {
	case EngineExact:
		solver := opts.Solver
		solver.Cancel = cancel
		ref, ok, err := SolveExact(p, opts.Encode, solver)
		if err == ErrBudget || err == ErrTooLarge {
			// Fall back to the heuristic: it can still certify feasibility
			// (the witness is verified exactly) but not infeasibility.
			ref, ok, err := SolveHeuristic(p, heuristicFor(opts, cancel))
			return probeResult{ref: ref, ok: ok, proven: ok, err: err}
		}
		return probeResult{ref: ref, ok: ok, proven: err == nil, err: err}
	case EngineHeuristic:
		ref, ok, err := SolveHeuristic(p, heuristicFor(opts, cancel))
		return probeResult{ref: ref, ok: ok, proven: ok, err: err}
	default: // EngineAuto
		// Witness-first: the local search certifies feasibility cheaply;
		// the exact engine is only needed when no witness is found —
		// either to recover one the heuristic missed or to prove
		// infeasibility. This mirrors the paper's observation that
		// infeasible instances dominate the cost of the θ sweep.
		if !exactTractable(p) {
			ref, ok, err := SolveHeuristic(p, heuristicFor(opts, cancel))
			return probeResult{ref: ref, ok: ok, proven: ok, err: err}
		}
		if opts.workers() > 1 {
			// Portfolio racing: both engines start at once and the loser
			// is cancelled. Deterministically equivalent to the
			// sequential order below (see raceAuto).
			return raceAuto(p, opts, cancel)
		}
		ref, ok, err := SolveHeuristic(p, heuristicFor(opts, cancel))
		if err != nil || ok {
			return probeResult{ref: ref, ok: ok, proven: ok, err: err}
		}
		encodeOpts := opts.Encode
		if encodeOpts.MaxTVars == 0 {
			encodeOpts.MaxTVars = 50_000
		}
		solver := opts.Solver
		solver.Cancel = cancel
		exRef, exOK, exErr := SolveExact(p, encodeOpts, solver)
		if exErr == ErrBudget || exErr == ErrTooLarge {
			return probeResult{ref: ref, ok: false, proven: false} // undecided: report the heuristic's best
		}
		if exErr != nil {
			return probeResult{err: exErr}
		}
		return probeResult{ref: exRef, ok: exOK, proven: true}
	}
}

// heuristicFor derives the local-search options for one decision,
// threading the search-level worker budget and cancellation through.
func heuristicFor(opts *SearchOptions, cancel <-chan struct{}) HeuristicOptions {
	h := opts.Heuristic
	h.TargetEarlyExit = true
	if h.Workers == 0 {
		h.Workers = opts.workers()
	}
	h.Cancel = cancel
	return h
}

// exactTractable pre-filters instances whose rough-assignment
// enumeration alone would be too expensive to even attempt encoding.
// Instances passing this filter are encoded with a T-variable cap (see
// decide), which measures the true pruned size.
func exactTractable(p *Problem) bool {
	if p.Rule == nil {
		return false
	}
	n := len(p.Rule.Vars())
	sigs := p.View.NumSignatures()
	props := p.View.NumProperties()
	taus := 1
	for i := 0; i < n; i++ {
		taus *= sigs * props
		if taus > 2_000_000 {
			return false
		}
	}
	return true
}

// HighestTheta finds, for fixed k, the largest threshold θ (on the
// 1/ThetaStep grid) for which a sort refinement exists — the paper's
// first experimental setting. Following Section 7, the sweep walks
// upward from the dataset's own structuredness value (for which the
// trivial one-sort refinement is a witness at k ≥ 1), because proving
// infeasibility is far more expensive than finding a witness. With
// Workers > 1 the next few θ values are probed speculatively on idle
// workers; results above the first infeasible θ are discarded, so the
// outcome is bit-identical to the sequential sweep.
func HighestTheta(view *matrix.View, rule *rules.Rule, fn rules.Func, k int, opts SearchOptions) (*Outcome, error) {
	opts.defaults()
	p := &Problem{View: view, Rule: rule, Func: fn, K: k}
	evalFn := p.EvalFunc()
	if evalFn == nil {
		return nil, fmt.Errorf("refine: no rule or func")
	}
	base, err := evalFn.Eval(view)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	// Start at ⌊σ(D)·step⌋/step: guaranteed feasible with the identity
	// refinement.
	t1 := int64(base.Value() * float64(opts.ThetaStep))
	if t1 < 0 {
		t1 = 0
	}
	identity := make(Assignment, view.NumSignatures())
	values, min, err := EvalAssignment(evalFn, view, identity, k)
	if err != nil {
		return nil, err
	}
	out := &Outcome{
		Refinement: &Refinement{Assignment: identity, K: k, Values: values, MinSigma: min, Exact: true},
		Theta1:     t1, Theta2: opts.ThetaStep, K: k, Exact: true,
	}
	steps := int(opts.ThetaStep - t1)
	err = sweep(&opts, steps,
		func(i int) *Problem {
			return &Problem{View: view, Rule: rule, Func: evalFn, K: k,
				Theta1: t1 + 1 + int64(i), Theta2: opts.ThetaStep}
		},
		func(r probeResult) bool { return r.err != nil || !r.ok },
		func(i int, r probeResult) (bool, error) {
			out.Instances++
			if r.err != nil {
				return true, r.err
			}
			if !r.ok {
				// Infeasible (proven) or no witness found: stop at the last
				// stored solution, as the paper does.
				if !r.proven {
					out.Exact = false
				}
				return true, nil
			}
			out.Refinement = r.ref
			out.Theta1 = t1 + 1 + int64(i)
			return false, nil
		})
	out.Elapsed = time.Since(start)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// LowestK finds, for a fixed threshold θ1/θ2, the smallest number k of
// implicit sorts admitting a sort refinement — the paper's second
// experimental setting. The search proceeds upward from k = 1 (the
// paper chooses direction case by case; upward matches its DBpedia
// runs); with Workers > 1 the next few k values are probed
// speculatively, with results above the first feasible k discarded.
func LowestK(view *matrix.View, rule *rules.Rule, fn rules.Func, theta1, theta2 int64, opts SearchOptions) (*Outcome, error) {
	opts.defaults()
	maxK := opts.MaxK
	if maxK <= 0 {
		maxK = view.NumSignatures()
	}
	if opts.Downward {
		return lowestKDownward(view, rule, fn, theta1, theta2, opts, maxK)
	}
	start := time.Now()
	out := &Outcome{Theta1: theta1, Theta2: theta2, Exact: true}
	found := false
	err := sweep(&opts, maxK,
		func(i int) *Problem {
			return &Problem{View: view, Rule: rule, Func: fn, K: i + 1, Theta1: theta1, Theta2: theta2}
		},
		func(r probeResult) bool { return r.err != nil || r.ok },
		func(i int, r probeResult) (bool, error) {
			out.Instances++
			if r.err != nil {
				return true, r.err
			}
			if r.ok {
				out.Refinement = r.ref
				out.K = i + 1
				found = true
				return true, nil
			}
			// An unproven "not found" is not an infeasibility proof; the
			// reported lowest k is then only an upper bound.
			if !r.proven {
				out.Exact = false
			}
			return false, nil
		})
	out.Elapsed = time.Since(start)
	if err != nil {
		return nil, err
	}
	if !found {
		return out, fmt.Errorf("refine: no refinement with θ=%d/%d within k ≤ %d", theta1, theta2, maxK)
	}
	return out, nil
}

// lowestKDownward walks k from the signature count (always feasible:
// one sort per signature set has σ = 1 for every rule with vacuous or
// full satisfaction on uniform sorts — verified before relying on it)
// down to the last feasible k. The relabel shortcut couples each step
// to the previous result, so the walk itself stays sequential; Workers
// still parallelize each step's restarts and portfolio race.
func lowestKDownward(view *matrix.View, rule *rules.Rule, fn rules.Func, theta1, theta2 int64, opts SearchOptions, maxK int) (*Outcome, error) {
	start := time.Now()
	out := &Outcome{Theta1: theta1, Theta2: theta2, Exact: true}
	var lastGood *Refinement
	lastK := 0
	for k := maxK; k >= 1; k-- {
		p := &Problem{View: view, Rule: rule, Func: fn, K: k, Theta1: theta1, Theta2: theta2}
		r := decide(p, &opts, opts.Cancel)
		out.Instances++
		if r.err != nil {
			return nil, r.err
		}
		if !r.ok {
			if !r.proven {
				out.Exact = false
			}
			break
		}
		ref := r.ref
		lastGood = ref
		lastK = k
		// Shortcut: if the found refinement uses fewer non-empty sorts
		// than k, relabel it to that count (feasibility is per-sort, so
		// dropping empty sorts preserves it) and continue from there.
		relabel := map[int]int{}
		for _, s := range ref.Assignment {
			if _, seen := relabel[s]; !seen {
				relabel[s] = len(relabel)
			}
		}
		if m := len(relabel); m < k {
			compact := make(Assignment, len(ref.Assignment))
			for i, s := range ref.Assignment {
				compact[i] = relabel[s]
			}
			values, min, err := EvalAssignment(p.EvalFunc(), view, compact, m)
			if err != nil {
				return nil, err
			}
			lastGood = &Refinement{Assignment: compact, K: m, Values: values, MinSigma: min, Exact: ref.Exact}
			lastK = m
			k = m // loop decrement lands on m−1 next
		}
	}
	out.Elapsed = time.Since(start)
	if lastGood == nil {
		return out, fmt.Errorf("refine: no refinement with θ=%d/%d within k ≤ %d", theta1, theta2, maxK)
	}
	out.Refinement = lastGood
	out.K = lastK
	return out, nil
}
