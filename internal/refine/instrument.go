package refine

import "repro/internal/metrics"

// restarts counts local-search restarts actually executed (portfolio
// racing and early-exit skip restarts that never run; those are not
// counted). Like rules.SignatureScans it is a process-wide counter: a
// serving stack attaches it to its registry (Registry.AttachCounter)
// so the background auto-refine work rate is visible in GET /metrics.
var restarts metrics.Counter

// Restarts returns the cumulative number of local-search restarts run
// since process start.
func Restarts() int64 { return restarts.Value() }

// RestartCounter returns the restart counter itself, for registration
// in a metrics registry.
func RestartCounter() *metrics.Counter { return &restarts }
