package refine

import (
	"fmt"
	"math/big"
	"sort"

	"repro/internal/ilp"
	"repro/internal/rules"
)

// EncodeOptions configures the ILP encoding.
type EncodeOptions struct {
	// SymmetryBreaking adds the paper's hash-ordering constraints
	// hash(i) ≤ hash(i+1) (Section 6.3) to remove permutation-equivalent
	// solutions.
	SymmetryBreaking bool
	// MaxHashExponent caps the 2^j coefficients of the hash function to
	// avoid overflow, at the cost of hash collisions (also discussed in
	// Section 6.3). 0 means the default of 40.
	MaxHashExponent int
	// MaxTVars aborts encoding with ErrTooLarge when k·|τ| exceeds the
	// cap (0 = unlimited). The auto engine uses this to route oversized
	// instances to the heuristic.
	MaxTVars int
}

// ErrTooLarge reports that an encoding exceeded EncodeOptions.MaxTVars.
var ErrTooLarge = fmt.Errorf("refine: ILP encoding exceeds size cap")

// Encoding is the paper's ILP instance for one
// EXISTSSORTREFINEMENT(r) problem (Section 6): variables X (signature
// placement), U (property usage), T (rough-assignment consistency), the
// linearization constraints tying them together, and one threshold
// inequality per implicit sort.
type Encoding struct {
	Model *ilp.Model
	// X[i][μ] = 1 iff signature μ is placed in implicit sort i.
	X [][]ilp.Var
	// U[i][p] = 1 iff implicit sort i uses property p.
	U [][]ilp.Var
	// T[i][t] = 1 iff rough assignment Taus[t] is consistent in sort i.
	T [][]ilp.Var
	// Taus lists the retained rough assignments (count(ϕ1, τ, M) > 0).
	Taus []rules.RoughAssignment
	// Tot and Fav are count(ϕ1, τ, M) and count(ϕ1∧ϕ2, τ, M) per τ.
	Tot, Fav []int64

	k        int
	numSigs  int
	numProps int
}

// Encode builds the ILP instance for the problem. The rule must avoid
// subj(·)=constant atoms. Counts that overflow int64 coefficients are
// reported as errors (they do not arise at the paper's scales).
func Encode(p *Problem, opts EncodeOptions) (*Encoding, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.Rule == nil {
		return nil, fmt.Errorf("refine: ILP encoding requires a rule")
	}
	counter, err := rules.NewCounter(p.Rule, p.View)
	if err != nil {
		return nil, err
	}
	n := len(counter.Vars())
	view := p.View
	k := p.K

	enc := &Encoding{
		Model:    &ilp.Model{},
		k:        k,
		numSigs:  view.NumSignatures(),
		numProps: view.NumProperties(),
	}
	m := enc.Model

	// Collect rough assignments with positive total count, computed
	// offline against the full view (Section 6.2: the counts are
	// constants of the ILP instance).
	var encodeErr error
	counter.Enumerate(func(tau rules.RoughAssignment) {
		if encodeErr != nil {
			return
		}
		tot, fav := counter.Count(tau)
		if tot.Sign() == 0 {
			return
		}
		if !tot.IsInt64() || !fav.IsInt64() {
			encodeErr = fmt.Errorf("refine: count overflow for τ=%v", tau)
			return
		}
		cp := append(rules.RoughAssignment(nil), tau...)
		enc.Taus = append(enc.Taus, cp)
		enc.Tot = append(enc.Tot, tot.Int64())
		enc.Fav = append(enc.Fav, fav.Int64())
		if opts.MaxTVars > 0 && k*len(enc.Taus) > opts.MaxTVars {
			encodeErr = ErrTooLarge
		}
	})
	if encodeErr != nil {
		return nil, encodeErr
	}

	// Variables.
	enc.X = make([][]ilp.Var, k)
	enc.U = make([][]ilp.Var, k)
	enc.T = make([][]ilp.Var, k)
	for i := 0; i < k; i++ {
		enc.X[i] = make([]ilp.Var, enc.numSigs)
		for mu := 0; mu < enc.numSigs; mu++ {
			enc.X[i][mu] = m.Binary(fmt.Sprintf("X[%d,%d]", i, mu))
		}
	}
	for i := 0; i < k; i++ {
		enc.U[i] = make([]ilp.Var, enc.numProps)
		for pr := 0; pr < enc.numProps; pr++ {
			enc.U[i][pr] = m.Binary(fmt.Sprintf("U[%d,%d]", i, pr))
		}
	}
	for i := 0; i < k; i++ {
		enc.T[i] = make([]ilp.Var, len(enc.Taus))
		for t := range enc.Taus {
			enc.T[i][t] = m.Binary(fmt.Sprintf("T[%d,%d]", i, t))
		}
	}

	// Each signature in exactly one sort.
	for mu := 0; mu < enc.numSigs; mu++ {
		terms := make([]ilp.Term, k)
		for i := 0; i < k; i++ {
			terms[i] = ilp.Term{Var: enc.X[i][mu], Coef: 1}
		}
		m.Add(fmt.Sprintf("place[%d]", mu), terms, ilp.EQ, 1)
	}

	// U[i][p] = 1 iff sort i contains a signature with p in its support.
	sigs := view.Signatures()
	withProp := make([][]int, enc.numProps) // property -> signatures supporting it
	for mu, sg := range sigs {
		for _, pr := range sg.Support() {
			withProp[pr] = append(withProp[pr], mu)
		}
	}
	for i := 0; i < k; i++ {
		for pr := 0; pr < enc.numProps; pr++ {
			for _, mu := range withProp[pr] {
				// X[i][μ] ≤ U[i][p]
				m.Add("supp", []ilp.Term{{Var: enc.X[i][mu], Coef: 1}, {Var: enc.U[i][pr], Coef: -1}}, ilp.LE, 0)
			}
			// U[i][p] ≤ Σ_{μ: p∈supp(μ)} X[i][μ]
			terms := []ilp.Term{{Var: enc.U[i][pr], Coef: 1}}
			for _, mu := range withProp[pr] {
				terms = append(terms, ilp.Term{Var: enc.X[i][mu], Coef: -1})
			}
			m.Add("use", terms, ilp.LE, 0)
		}
	}

	// T[i][τ] = 1 iff every signature and property mentioned by τ is
	// present/used in sort i (the paper's two linearization inequalities).
	for i := 0; i < k; i++ {
		for t, tau := range enc.Taus {
			sum := make([]ilp.Term, 0, 2*n+1)
			for _, rc := range tau {
				sum = append(sum, ilp.Term{Var: enc.X[i][rc.Sig], Coef: 1})
				sum = append(sum, ilp.Term{Var: enc.U[i][rc.Prop], Coef: 1})
			}
			// Σ(X+U) − T ≤ 2n − 1
			m.Add("lin1", append(append([]ilp.Term(nil), sum...),
				ilp.Term{Var: enc.T[i][t], Coef: -1}), ilp.LE, int64(2*n-1))
			// 2n·T − Σ(X+U) ≤ 0
			neg := make([]ilp.Term, 0, 2*n+1)
			neg = append(neg, ilp.Term{Var: enc.T[i][t], Coef: int64(2 * n)})
			for _, s := range sum {
				neg = append(neg, ilp.Term{Var: s.Var, Coef: -s.Coef})
			}
			m.Add("lin2", neg, ilp.LE, 0)
		}
	}

	// Threshold per sort: Σ_τ (θ2·fav − θ1·tot)·T[i][τ] ≥ 0.
	for i := 0; i < k; i++ {
		terms := make([]ilp.Term, 0, len(enc.Taus))
		for t := range enc.Taus {
			coef := new(big.Int).Mul(big.NewInt(p.Theta2), big.NewInt(enc.Fav[t]))
			coef.Sub(coef, new(big.Int).Mul(big.NewInt(p.Theta1), big.NewInt(enc.Tot[t])))
			if !coef.IsInt64() {
				return nil, fmt.Errorf("refine: threshold coefficient overflow")
			}
			if c := coef.Int64(); c != 0 {
				terms = append(terms, ilp.Term{Var: enc.T[i][t], Coef: c})
			}
		}
		m.Add(fmt.Sprintf("theta[%d]", i), terms, ilp.GE, 0)
	}

	// Symmetry breaking: hash(i) ≤ hash(i+1) with capped exponents.
	if opts.SymmetryBreaking && k > 1 {
		maxExp := opts.MaxHashExponent
		if maxExp <= 0 {
			maxExp = 40
		}
		coef := func(j int) int64 {
			if j > maxExp {
				j = maxExp
			}
			return int64(1) << uint(j)
		}
		for i := 0; i+1 < k; i++ {
			terms := make([]ilp.Term, 0, 2*enc.numSigs)
			for mu := 0; mu < enc.numSigs; mu++ {
				terms = append(terms, ilp.Term{Var: enc.X[i][mu], Coef: coef(mu)})
				terms = append(terms, ilp.Term{Var: enc.X[i+1][mu], Coef: -coef(mu)})
			}
			m.Add(fmt.Sprintf("sym[%d]", i), terms, ilp.LE, 0)
		}
	}

	// Branching hints: decide X first (largest signatures first), then
	// U; T variables are functionally determined and propagate.
	order := make([]int, enc.numSigs)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return sigs[order[a]].Count > sigs[order[b]].Count })
	var prio []ilp.Var
	for _, mu := range order {
		for i := 0; i < k; i++ {
			prio = append(prio, enc.X[i][mu])
		}
	}
	for i := 0; i < k; i++ {
		prio = append(prio, enc.U[i]...)
	}
	m.SetPriority(prio)
	return enc, nil
}

// DecodeAssignment extracts the signature→sort assignment from a
// feasible solution vector.
func (e *Encoding) DecodeAssignment(values []int64) (Assignment, error) {
	assign := make(Assignment, e.numSigs)
	for mu := 0; mu < e.numSigs; mu++ {
		found := -1
		for i := 0; i < e.k; i++ {
			if values[e.X[i][mu]] == 1 {
				if found >= 0 {
					return nil, fmt.Errorf("refine: signature %d placed in sorts %d and %d", mu, found, i)
				}
				found = i
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("refine: signature %d unplaced", mu)
		}
		assign[mu] = found
	}
	return assign, nil
}

// SolveExact encodes and solves the problem with the pseudo-Boolean
// engine, returning a refinement on feasibility. Status Unknown is
// reported via error ErrBudget.
func SolveExact(p *Problem, opts EncodeOptions, solverOpts ilp.Options) (*Refinement, bool, error) {
	enc, err := Encode(p, opts)
	if err != nil {
		return nil, false, err
	}
	res := ilp.SolvePB(enc.Model, solverOpts)
	switch res.Status {
	case ilp.StatusInfeasible:
		return nil, false, nil
	case ilp.StatusUnknown:
		return nil, false, ErrBudget
	}
	assign, err := enc.DecodeAssignment(res.Values)
	if err != nil {
		return nil, false, err
	}
	values, min, err := EvalAssignment(p.EvalFunc(), p.View, assign, p.K)
	if err != nil {
		return nil, false, err
	}
	return &Refinement{Assignment: assign, K: p.K, Values: values, MinSigma: min, Exact: true}, true, nil
}

// ErrBudget reports that a solver hit its work limit without deciding.
var ErrBudget = fmt.Errorf("refine: solver budget exhausted")
