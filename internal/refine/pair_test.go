package refine

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/matrix"
	"repro/internal/rules"
)

// opaqueFunc hides a measure's incremental interfaces (CountsFunc,
// PairCountsFunc), forcing the search engine onto its generic
// subset-view path — the pre-compilation baseline the pair-mode
// equivalence and ablation tests compare against.
type opaqueFunc struct{ fn rules.Func }

func (o opaqueFunc) Name() string                             { return o.fn.Name() }
func (o opaqueFunc) Eval(v *matrix.View) (rules.Ratio, error) { return o.fn.Eval(v) }

// depProps picks two properties of the DBpedia Persons generator.
const (
	depP1 = datagen.PropDeathPlace
	depP2 = datagen.PropDeathDate
)

func depView(t *testing.T) *matrix.View {
	t.Helper()
	v := datagen.DBpediaPersons(0.002)
	if _, ok := v.PropertyIndex(depP1); !ok {
		t.Fatalf("generator view lacks %s", depP1)
	}
	return v
}

// The pair-mode delta scoring must drive the local search through
// exactly the same trajectory as the generic subset-view baseline:
// identical assignments, identical σ Ratios, for Dep, SymDep and a
// compiled pinned custom rule.
func TestPairModeBitIdenticalToGenericSearch(t *testing.T) {
	v := depView(t)
	funcs := []rules.Func{
		rules.DepFunc(depP1, depP2),
		rules.SymDepFunc(depP2, depP1),
		rules.DepDisjFunc(depP1, depP2),
		rules.FuncForRule(rules.MustParse(
			"subj(c1) = subj(c2) && prop(c1) = <" + depP1 + "> && prop(c2) = <" + depP2 + "> -> val(c1) = val(c2)")),
		// A missing property must stay vacuous through both paths.
		rules.DepFunc(depP1, "http://example.org/absent"),
	}
	for _, fn := range funcs {
		if _, ok := fn.(rules.PairCountsFunc); !ok {
			t.Fatalf("%s: not a PairCountsFunc", fn.Name())
		}
		for _, k := range []int{2, 3} {
			opts := HeuristicOptions{Restarts: 6, MaxIters: 40, Seed: 7}
			fast := &Problem{View: v, Func: fn, K: k, Theta1: 95, Theta2: 100}
			slow := &Problem{View: v, Func: opaqueFunc{fn}, K: k, Theta1: 95, Theta2: 100}
			refF, okF, errF := SolveHeuristic(fast, opts)
			refS, okS, errS := SolveHeuristic(slow, opts)
			if errF != nil || errS != nil {
				t.Fatalf("%s k=%d: errs %v / %v", fn.Name(), k, errF, errS)
			}
			if okF != okS {
				t.Fatalf("%s k=%d: feasible %v vs %v", fn.Name(), k, okF, okS)
			}
			if len(refF.Assignment) != len(refS.Assignment) {
				t.Fatalf("%s k=%d: assignment lengths differ", fn.Name(), k)
			}
			for i := range refF.Assignment {
				if refF.Assignment[i] != refS.Assignment[i] {
					t.Fatalf("%s k=%d: assignments diverge at signature %d:\n pair    %v\n generic %v",
						fn.Name(), k, i, refF.Assignment, refS.Assignment)
				}
			}
			for i := range refF.Values {
				if refF.Values[i].Fav.Cmp(refS.Values[i].Fav) != 0 || refF.Values[i].Tot.Cmp(refS.Values[i].Tot) != 0 {
					t.Fatalf("%s k=%d: sort %d Ratio %v vs %v", fn.Name(), k, i, refF.Values[i], refS.Values[i])
				}
			}
		}
	}
}

// The point of the compiled evaluators: a Dep local search must do at
// least 10× fewer signature-list scans per search than the
// scan-per-evaluation baseline (on the 64-signature DBpedia generator
// the baseline scans once per candidate move; pair mode scans only for
// the final exact verification).
func TestPairModeScanReduction(t *testing.T) {
	v := depView(t)
	fn := rules.DepFunc(depP1, depP2)
	opts := HeuristicOptions{Restarts: 4, MaxIters: 30, Seed: 3}
	run := func(f rules.Func) int64 {
		p := &Problem{View: v, Func: f, K: 3, Theta1: 99, Theta2: 100}
		before := rules.SignatureScans()
		if _, _, err := SolveHeuristic(p, opts); err != nil {
			t.Fatal(err)
		}
		return rules.SignatureScans() - before
	}
	fast := run(fn)
	slow := run(opaqueFunc{fn})
	if fast == 0 {
		t.Fatal("expected some scans from final exact verification")
	}
	if slow < 10*fast {
		t.Fatalf("scan reduction only %d/%d = %.1f×, want ≥ 10×", slow, fast, float64(slow)/float64(fast))
	}
	t.Logf("signature scans: baseline %d, pair mode %d (%.0f× fewer)", slow, fast, float64(slow)/float64(fast))
}

// Pair mode must stay deterministic across worker counts (run under
// -race in CI).
func TestPairModeWorkerDeterminism(t *testing.T) {
	v := depView(t)
	fn := rules.SymDepFunc(depP1, depP2)
	var want Assignment
	for _, workers := range []int{1, 4} {
		p := &Problem{View: v, Func: fn, K: 3, Theta1: 90, Theta2: 100}
		ref, _, err := SolveHeuristic(p, HeuristicOptions{Restarts: 8, MaxIters: 30, Seed: 11, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = ref.Assignment
			continue
		}
		for i := range want {
			if ref.Assignment[i] != want[i] {
				t.Fatalf("workers=%d diverges at signature %d", workers, i)
			}
		}
	}
}

// HighestTheta under a dependency measure must agree end-to-end with
// the generic baseline: same θ, same refinement.
func TestHighestThetaDepMatchesBaseline(t *testing.T) {
	v := depView(t)
	fn := rules.DepFunc(depP2, depP1)
	opts := SearchOptions{Engine: EngineHeuristic, Heuristic: HeuristicOptions{Restarts: 4, MaxIters: 25, Seed: 5}, Workers: 1}
	outF, err := HighestTheta(v, nil, fn, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	outS, err := HighestTheta(v, nil, opaqueFunc{fn}, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if outF.Theta1 != outS.Theta1 || outF.Theta2 != outS.Theta2 {
		t.Fatalf("θ diverged: %d/%d vs %d/%d", outF.Theta1, outF.Theta2, outS.Theta1, outS.Theta2)
	}
	for i := range outF.Refinement.Assignment {
		if outF.Refinement.Assignment[i] != outS.Refinement.Assignment[i] {
			t.Fatalf("assignments diverge at signature %d", i)
		}
	}
}
