package refine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/ilp"
	"repro/internal/matrix"
	"repro/internal/rules"
)

// clusteredView builds a noisy two-cluster view: large enough that the
// local search does real work, small enough for the exact engine to
// participate in the portfolio race.
func clusteredView(t testing.TB, nSigs, nProps int, seed int64) *matrix.View {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	props := make([]string, nProps)
	for i := range props {
		props[i] = fmt.Sprintf("p%d", i)
	}
	var sigs []matrix.Signature
	for i := 0; i < nSigs; i++ {
		b := bitset.New(nProps)
		base := 0
		if i%2 == 1 {
			base = nProps / 2
		}
		for j := 0; j < nProps/2; j++ {
			if rng.Intn(4) > 0 {
				b.Set(base + j)
			}
		}
		if b.Count() == 0 {
			b.Set(base)
		}
		sigs = append(sigs, matrix.Signature{Bits: b, Count: rng.Intn(40) + 1})
	}
	v, err := matrix.New(props, sigs)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func sameRefinement(t *testing.T, label string, a, b *Refinement) {
	t.Helper()
	if (a == nil) != (b == nil) {
		t.Fatalf("%s: refinement presence differs: %v vs %v", label, a != nil, b != nil)
	}
	if a == nil {
		return
	}
	if a.K != b.K || a.MinSigma != b.MinSigma || a.Exact != b.Exact {
		t.Fatalf("%s: refinement header differs: k=%d/%d min=%v/%v exact=%v/%v",
			label, a.K, b.K, a.MinSigma, b.MinSigma, a.Exact, b.Exact)
	}
	if len(a.Assignment) != len(b.Assignment) {
		t.Fatalf("%s: assignment lengths differ", label)
	}
	for i := range a.Assignment {
		if a.Assignment[i] != b.Assignment[i] {
			t.Fatalf("%s: assignments differ at %d: %v vs %v", label, i, a.Assignment, b.Assignment)
		}
	}
}

func sameOutcome(t *testing.T, label string, a, b *Outcome) {
	t.Helper()
	if a.Theta1 != b.Theta1 || a.Theta2 != b.Theta2 || a.K != b.K ||
		a.Instances != b.Instances || a.Exact != b.Exact {
		t.Fatalf("%s: outcomes differ: θ=%d/%d vs %d/%d k=%d vs %d instances=%d vs %d exact=%v vs %v",
			label, a.Theta1, a.Theta2, b.Theta1, b.Theta2, a.K, b.K,
			a.Instances, b.Instances, a.Exact, b.Exact)
	}
	sameRefinement(t, label, a.Refinement, b.Refinement)
}

// The worker pool must be invisible in results: every Workers value
// yields the identical refinement, for both counts-incremental (Cov,
// Sim) and generic measures, with and without the witness early exit.
func TestSolveHeuristicWorkerDeterminism(t *testing.T) {
	v := clusteredView(t, 18, 8, 7)
	for _, fn := range []rules.Func{rules.CovFunc(), rules.SimFunc()} {
		for _, early := range []bool{false, true} {
			p := &Problem{View: v, Func: fn, K: 3, Theta1: 80, Theta2: 100}
			var base *Refinement
			var baseOK bool
			for _, workers := range []int{1, 2, 8} {
				ref, ok, err := SolveHeuristic(p, HeuristicOptions{
					Restarts: 6, MaxIters: 60, Seed: 11,
					TargetEarlyExit: early, Workers: workers,
				})
				if err != nil {
					t.Fatal(err)
				}
				label := fmt.Sprintf("%s early=%v workers=%d", fn.Name(), early, workers)
				if workers == 1 {
					base, baseOK = ref, ok
					continue
				}
				if ok != baseOK {
					t.Fatalf("%s: ok=%v, want %v", label, ok, baseOK)
				}
				sameRefinement(t, label, base, ref)
			}
		}
	}
}

// HighestTheta with speculative probes and portfolio racing must match
// the sequential sweep bit for bit (Elapsed aside).
func TestHighestThetaWorkerDeterminism(t *testing.T) {
	v := clusteredView(t, 14, 8, 3)
	for _, engine := range []Engine{EngineAuto, EngineHeuristic} {
		opts := SearchOptions{
			Engine:    engine,
			Heuristic: HeuristicOptions{Restarts: 3, MaxIters: 40, Seed: 5},
			Solver:    ilp.Options{MaxDecisions: 50_000},
			Encode:    EncodeOptions{SymmetryBreaking: true, MaxTVars: 5_000},
		}
		opts.Workers = 1
		seq, err := HighestTheta(v, rules.CovRule(), nil, 2, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4} {
			opts.Workers = workers
			par, err := HighestTheta(v, rules.CovRule(), nil, 2, opts)
			if err != nil {
				t.Fatal(err)
			}
			sameOutcome(t, fmt.Sprintf("engine=%v workers=%d", engine, workers), seq, par)
		}
	}
}

// LowestK (upward and downward) must likewise be worker-invariant.
func TestLowestKWorkerDeterminism(t *testing.T) {
	v := clusteredView(t, 14, 8, 9)
	for _, downward := range []bool{false, true} {
		opts := SearchOptions{
			Heuristic: HeuristicOptions{Restarts: 3, MaxIters: 40, Seed: 5},
			Solver:    ilp.Options{MaxDecisions: 50_000},
			Encode:    EncodeOptions{SymmetryBreaking: true, MaxTVars: 5_000},
			Downward:  downward,
		}
		opts.Workers = 1
		seq, err := LowestK(v, rules.CovRule(), nil, 85, 100, opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.Workers = 4
		par, err := LowestK(v, rules.CovRule(), nil, 85, 100, opts)
		if err != nil {
			t.Fatal(err)
		}
		sameOutcome(t, fmt.Sprintf("downward=%v", downward), seq, par)
	}
}

// A pre-closed cancel channel must abort the search without error; the
// result is reported as "no witness found" and carries no proof.
func TestCancelAbortsSearch(t *testing.T) {
	v := clusteredView(t, 14, 8, 3)
	closed := make(chan struct{})
	close(closed)

	p := &Problem{View: v, Func: rules.CovFunc(), K: 2, Theta1: 95, Theta2: 100}
	ref, ok, err := SolveHeuristic(p, HeuristicOptions{
		Restarts: 4, MaxIters: 1000, Seed: 1, Workers: 2, Cancel: closed,
	})
	if err != nil {
		t.Fatalf("cancelled SolveHeuristic errored: %v", err)
	}
	if ok || ref != nil {
		t.Fatalf("cancelled SolveHeuristic claimed a witness: ok=%v ref=%v", ok, ref)
	}

	opts := SearchOptions{
		Engine:    EngineHeuristic,
		Heuristic: HeuristicOptions{Restarts: 4, MaxIters: 1000, Seed: 1},
		Workers:   2,
		Cancel:    closed,
	}
	out, err := HighestTheta(v, rules.CovRule(), nil, 2, opts)
	if err != nil {
		t.Fatalf("cancelled HighestTheta errored: %v", err)
	}
	if out.Exact {
		t.Fatal("cancelled HighestTheta reported an exact outcome")
	}
}

// The portfolio race must return the exact engine's infeasibility
// proof when the heuristic cannot find a witness.
func TestRaceAutoProvesInfeasible(t *testing.T) {
	// Three pairwise-incompatible signatures cannot reach σCov = 1 with
	// only 2 sorts — exactly decidable, heuristically unprovable.
	v := mkView(t, []string{"a", "b", "c"},
		[]string{"100", "010", "001"}, []int{5, 5, 5})
	p := &Problem{View: v, Rule: rules.CovRule(), K: 2, Theta1: 1, Theta2: 1}
	opts := &SearchOptions{
		Engine:    EngineAuto,
		Heuristic: HeuristicOptions{Restarts: 2, MaxIters: 20, Seed: 1},
		Encode:    EncodeOptions{SymmetryBreaking: true},
		Workers:   4,
	}
	opts.defaults()
	r := decide(p, opts, nil)
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.ok || !r.proven {
		t.Fatalf("race verdict ok=%v proven=%v, want proven infeasible", r.ok, r.proven)
	}
}
