package incr

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/rules"
)

// This file is the engine half of the cluster contract with
// internal/cluster: an epoch-cut export of the live σ-aggregates in a
// canonical, name-keyed form that a coordinator can merge exactly
// across nodes with the PR 5 primitives (rules.CountTracker.Merge,
// rules.PairTracker.Merge). Column indices are shard- and node-local,
// so the wire form re-keys everything by sorted active property name —
// the only identity that survives crossing a process boundary.

// AggregateExport is one node's live σ-aggregate state at an epoch
// cut, compacted to its active (non-retired) property columns in
// sorted-name order. Merging exports from subject-disjoint nodes is
// exact: every N_p, |S| unit and C[p1][p2] entry lives wholly on one
// node, so the cross-node aggregates are plain sums.
type AggregateExport struct {
	// Epoch is the exporting engine's (composite) epoch at the cut.
	Epoch uint64
	// Names are the active property names, sorted ascending — the
	// column space of Tracker and Pairs.
	Names []string
	// Tracker holds N_p per Names column, |S| and the 1-entry total.
	Tracker *rules.CountTracker
	// Pairs holds the co-occurrence matrix over Names; nil when pair
	// tracking is disabled (Options.DisablePairCounts).
	Pairs *rules.PairTracker
}

// exportAggregatesLocked compacts one dataset's aggregates into the
// sorted-active-name column space. Caller holds at least an RLock.
func (d *Dataset) exportAggregatesLocked() *AggregateExport {
	counts := d.tracker.Counts()
	names := make([]string, 0, len(d.props))
	for i, p := range d.props {
		if counts[i] > 0 {
			names = append(names, p)
		}
	}
	sort.Strings(names)
	nameIdx := make(map[string]int, len(names))
	for i, n := range names {
		nameIdx[n] = i
	}
	colMap := make([]int, len(d.props))
	for i, p := range d.props {
		if counts[i] > 0 {
			colMap[i] = nameIdx[p]
		} else {
			colMap[i] = -1
		}
	}
	ex := &AggregateExport{Epoch: d.epoch, Names: names, Tracker: rules.NewCountTracker(len(names))}
	ex.Tracker.Merge(d.tracker, colMap)
	if d.pairs != nil {
		ex.Pairs = rules.NewPairTracker(len(names))
		ex.Pairs.Merge(d.pairs, colMap)
	}
	return ex
}

// ExportAggregates returns the dataset's live aggregates at the
// current epoch, under one read cut.
func (d *Dataset) ExportAggregates() *AggregateExport {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.exportAggregatesLocked()
}

// ExportAggregates returns the merged aggregates of all shards under
// one all-shard read cut, at the composite epoch — the node-level
// state a cluster coordinator merges across nodes.
func (s *Sharded) ExportAggregates() *AggregateExport {
	if len(s.shards) == 1 {
		return s.shards[0].ExportAggregates()
	}
	s.rlockAll()
	defer s.runlockAll()
	merged, names, nameIdx := s.mergedCountsLocked()
	ex := &AggregateExport{Names: names, Tracker: merged}
	for _, d := range s.shards {
		ex.Epoch += d.epoch
	}
	tracked := true
	for _, d := range s.shards {
		if d.pairs == nil {
			tracked = false
			break
		}
	}
	if tracked {
		ex.Pairs = rules.NewPairTracker(len(names))
		for _, d := range s.shards {
			ex.Pairs.Merge(d.pairs, s.colMapLocked(d, nameIdx))
		}
	}
	return ex
}

// AggregateExporter is implemented by both engines; the serving tier's
// cluster-worker endpoints accept any engine through it.
type AggregateExporter interface {
	ExportAggregates() *AggregateExport
}

var (
	_ AggregateExporter = (*Dataset)(nil)
	_ AggregateExporter = (*Sharded)(nil)
)

// aggExportVersion guards the wire layout; bump on any format change
// so a mixed-version cluster fails loudly instead of mis-merging.
const aggExportVersion = 1

// AppendBinary appends a canonical encoding of the export to dst and
// returns the extended slice: version, epoch, the sorted names, then
// the tracker and (flagged) pair-tracker encodings, each
// length-prefixed, reusing the checkpoint codecs from internal/rules.
func (e *AggregateExport) AppendBinary(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, aggExportVersion)
	dst = binary.AppendUvarint(dst, e.Epoch)
	dst = binary.AppendUvarint(dst, uint64(len(e.Names)))
	for _, n := range e.Names {
		dst = binary.AppendUvarint(dst, uint64(len(n)))
		dst = append(dst, n...)
	}
	tb := e.Tracker.AppendBinary(nil)
	dst = binary.AppendUvarint(dst, uint64(len(tb)))
	dst = append(dst, tb...)
	if e.Pairs == nil {
		dst = append(dst, 0)
	} else {
		dst = append(dst, 1)
		pb := e.Pairs.AppendBinary(nil)
		dst = binary.AppendUvarint(dst, uint64(len(pb)))
		dst = append(dst, pb...)
	}
	return dst
}

// DecodeAggregateExport decodes an AppendBinary encoding, validating
// that the tracker (and pair tracker, when present) cover exactly the
// named column space and that the names are sorted and distinct.
func DecodeAggregateExport(data []byte) (*AggregateExport, error) {
	r := exportReader{data: data}
	if ver := r.uvarint(); r.err == nil && ver != aggExportVersion {
		return nil, fmt.Errorf("incr: aggregate export version %d (want %d)", ver, aggExportVersion)
	}
	e := &AggregateExport{Epoch: r.uvarint()}
	nNames := int(r.uvarint())
	if r.err == nil && nNames > len(data) {
		return nil, fmt.Errorf("incr: aggregate export claims %d names in %d bytes", nNames, len(data))
	}
	e.Names = make([]string, 0, nNames)
	for i := 0; i < nNames && r.err == nil; i++ {
		n := r.str()
		if i > 0 && r.err == nil && n <= e.Names[i-1] {
			return nil, fmt.Errorf("incr: aggregate export names not sorted/distinct at %d", i)
		}
		e.Names = append(e.Names, n)
	}
	tb := r.bytes()
	if r.err != nil {
		return nil, fmt.Errorf("incr: aggregate export: %w", r.err)
	}
	var err error
	if e.Tracker, err = rules.DecodeCountTracker(tb); err != nil {
		return nil, fmt.Errorf("incr: aggregate export: %w", err)
	}
	if e.Tracker.NumProps() != len(e.Names) {
		return nil, fmt.Errorf("incr: aggregate export: tracker has %d columns, %d names",
			e.Tracker.NumProps(), len(e.Names))
	}
	switch flag := r.byte(); flag {
	case 0:
	case 1:
		pb := r.bytes()
		if r.err != nil {
			return nil, fmt.Errorf("incr: aggregate export pairs: %w", r.err)
		}
		if e.Pairs, err = rules.DecodePairTracker(pb); err != nil {
			return nil, fmt.Errorf("incr: aggregate export: %w", err)
		}
		if e.Pairs.NumProps() != len(e.Names) {
			return nil, fmt.Errorf("incr: aggregate export: pair tracker has %d columns, %d names",
				e.Pairs.NumProps(), len(e.Names))
		}
	default:
		if r.err == nil {
			return nil, fmt.Errorf("incr: aggregate export: bad pairs flag %d", flag)
		}
	}
	if r.err != nil {
		return nil, fmt.Errorf("incr: aggregate export: %w", r.err)
	}
	if r.rest() != 0 {
		return nil, fmt.Errorf("incr: aggregate export: %d trailing bytes", r.rest())
	}
	return e, nil
}

// MergeAggregateExports merges subject-disjoint node exports into one:
// union of the name spaces (sorted), summed trackers, and a summed
// pair tracker when every input carries one (pairsOK reports that; a
// single node without pair tracking disables exact pair reads for the
// merged result, mirroring Sharded.SigmaPairs).
func MergeAggregateExports(exports []*AggregateExport) (merged *AggregateExport, pairsOK bool) {
	if len(exports) == 1 {
		return exports[0], exports[0].Pairs != nil
	}
	nameSet := map[string]struct{}{}
	var epoch uint64
	pairsOK = true
	for _, e := range exports {
		epoch += e.Epoch
		for _, n := range e.Names {
			nameSet[n] = struct{}{}
		}
		if e.Pairs == nil {
			pairsOK = false
		}
	}
	names := make([]string, 0, len(nameSet))
	for n := range nameSet {
		names = append(names, n)
	}
	sort.Strings(names)
	nameIdx := make(map[string]int, len(names))
	for i, n := range names {
		nameIdx[n] = i
	}
	out := &AggregateExport{Epoch: epoch, Names: names, Tracker: rules.NewCountTracker(len(names))}
	if pairsOK {
		out.Pairs = rules.NewPairTracker(len(names))
	}
	for _, e := range exports {
		colMap := make([]int, len(e.Names))
		for i, n := range e.Names {
			colMap[i] = nameIdx[n]
		}
		out.Tracker.Merge(e.Tracker, colMap)
		if pairsOK {
			out.Pairs.Merge(e.Pairs, colMap)
		}
	}
	return out, pairsOK
}

// Sigma evaluates a counts-only measure against the export — the same
// (N_p, |S|) evaluation the live engines use, so a coordinator's
// merged answer is bit-identical to a single node holding all data.
func (e *AggregateExport) Sigma(fn rules.CountsFunc) rules.Ratio {
	return e.Tracker.Eval(fn)
}

// SigmaPairs evaluates a pair-counts measure against the export;
// ok = false when the export carries no pair matrix.
func (e *AggregateExport) SigmaPairs(fn rules.PairCountsFunc) (rules.Ratio, bool) {
	if e.Pairs == nil {
		return rules.Ratio{}, false
	}
	pc := trackerPairs{t: e.Pairs, nameIdx: e.NameIndex()}
	return fn.EvalPairCounts(e.Tracker.Counts(), pc, e.Tracker.Subjects()), true
}

// NameIndex returns the name → column map of the export.
func (e *AggregateExport) NameIndex() map[string]int {
	idx := make(map[string]int, len(e.Names))
	for i, n := range e.Names {
		idx[n] = i
	}
	return idx
}

// exportReader is a cursor over an encoding, accumulating the first
// error (the same discipline as the rules/matrix decoders).
type exportReader struct {
	data []byte
	off  int
	err  error
}

func (r *exportReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.err = fmt.Errorf("truncated uvarint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *exportReader) str() string {
	n := int(r.uvarint())
	if r.err != nil {
		return ""
	}
	if n < 0 || n > len(r.data)-r.off {
		r.err = fmt.Errorf("truncated string (%d bytes) at offset %d", n, r.off)
		return ""
	}
	s := string(r.data[r.off : r.off+n])
	r.off += n
	return s
}

func (r *exportReader) bytes() []byte {
	n := int(r.uvarint())
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.data)-r.off {
		r.err = fmt.Errorf("truncated block (%d bytes) at offset %d", n, r.off)
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *exportReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.data) {
		r.err = fmt.Errorf("truncated byte at offset %d", r.off)
		return 0
	}
	b := r.data[r.off]
	r.off++
	return b
}

func (r *exportReader) rest() int { return len(r.data) - r.off }
