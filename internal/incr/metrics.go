package incr

import (
	"strconv"

	"repro/internal/metrics"
)

// shardMetrics is one shard's ingest instrumentation tap. All updates
// happen per effective batch (never per triple) under the shard lock,
// so the hot-path cost is a handful of atomic adds per Apply — noise
// next to the signature migration work itself.
type shardMetrics struct {
	added, removed *metrics.Counter
	batches        *metrics.Counter
	batchTriples   *metrics.Histogram
	epoch          *metrics.Gauge
	signatures     *metrics.Gauge
	subjects       *metrics.Gauge
}

// engineMetrics is the per-shard-labeled family set shared by the
// single Dataset (one "0" shard) and the sharded engine. The bucket
// layout is uniform across shards, so per-shard batch histograms merge
// exactly (metrics.Histogram.Merge) — the same additive discipline as
// the σ aggregates.
type engineMetrics struct {
	triples      *metrics.CounterVec
	batches      *metrics.CounterVec
	batchTriples *metrics.HistogramVec
	epoch        *metrics.GaugeVec
	signatures   *metrics.GaugeVec
	subjects     *metrics.GaugeVec
}

func newEngineMetrics(reg *metrics.Registry) *engineMetrics {
	return &engineMetrics{
		triples: reg.CounterVec("rdf_ingest_triples_total",
			"Triples applied to the live dataset, by shard and operation.", "shard", "op"),
		batches: reg.CounterVec("rdf_ingest_batches_total",
			"Effective (non-empty) ingest batches applied, by shard.", "shard"),
		batchTriples: reg.HistogramVec("rdf_ingest_batch_triples",
			"Triples per effective ingest batch, by shard.", metrics.DefSizeBuckets, "shard"),
		epoch: reg.GaugeVec("rdf_engine_epoch",
			"Current shard epoch (one increment per effective batch).", "shard"),
		signatures: reg.GaugeVec("rdf_engine_signatures",
			"Live signature sets per shard.", "shard"),
		subjects: reg.GaugeVec("rdf_engine_subjects",
			"Live subjects per shard.", "shard"),
	}
}

// shard materializes shard i's children (cached here, so the batch
// path never touches the vec maps).
func (m *engineMetrics) shard(i int) *shardMetrics {
	s := strconv.Itoa(i)
	return &shardMetrics{
		added:        m.triples.With(s, "add"),
		removed:      m.triples.With(s, "remove"),
		batches:      m.batches.With(s),
		batchTriples: m.batchTriples.With(s),
		epoch:        m.epoch.With(s),
		signatures:   m.signatures.With(s),
		subjects:     m.subjects.With(s),
	}
}

// setMetrics installs the shard's instrumentation tap. Like
// SetBatchHook it takes the write lock, so installation never races a
// batch mid-flight.
func (d *Dataset) setMetrics(m *shardMetrics) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.met = m
	if m != nil {
		// Seed the gauges so a scrape before the first post-registration
		// batch (e.g. right after WAL recovery) reads the true state.
		m.epoch.Set(int64(d.epoch))
		m.signatures.Set(int64(len(d.sigs)))
		m.subjects.Set(int64(d.g.SubjectCount()))
	}
}

// registerTerms adds the scrape-time gauge over the (shared,
// independently thread-safe) term dictionary.
func registerTerms(reg *metrics.Registry, dict interface{ Len() int }) {
	reg.GaugeFunc("rdf_engine_terms",
		"Distinct interned terms in the dictionary.",
		func() float64 { return float64(dict.Len()) })
}

// registerViewStorage adds the scrape-time signature-storage gauges.
// Each scrape reads the engine's ViewStorage breakdown — the snapshot
// behind it is cached per epoch, so steady-state scrapes cost pointer
// loads, and a scrape after a burst pays one snapshot build that the
// next reader would have paid anyway.
func registerViewStorage(reg *metrics.Registry, e Engine) {
	reg.GaugeFunc("rdf_view_bytes",
		"Estimated bytes held by the current snapshot view(s): signature containers, property tables and built pair aggregates.",
		func() float64 { return float64(e.ViewStorage().ViewBytes) })
	reg.GaugeFunc("rdf_view_sparse_signatures",
		"Snapshot signatures stored in the compressed sorted-index container.",
		func() float64 { return float64(e.ViewStorage().SparseSigs) })
	reg.GaugeFunc("rdf_view_dense_signatures",
		"Snapshot signatures stored in the dense word container.",
		func() float64 { return float64(e.ViewStorage().DenseSigs) })
	reg.GaugeFunc("rdf_pair_tracker_bytes",
		"Estimated bytes held by the live pair-count trackers.",
		func() float64 { return float64(e.ViewStorage().TrackerBytes) })
}

// RegisterMetrics registers the dataset's ingest instrumentation into
// reg (shard label "0") and installs the tap. Register at most once
// per registry — the family names are claimed globally.
func (d *Dataset) RegisterMetrics(reg *metrics.Registry) {
	d.setMetrics(newEngineMetrics(reg).shard(0))
	registerTerms(reg, d.Dict())
	registerViewStorage(reg, d)
}

// RegisterMetrics registers per-shard ingest instrumentation for every
// shard into reg and installs the taps, plus the shared-dictionary
// term gauge.
func (s *Sharded) RegisterMetrics(reg *metrics.Registry) {
	m := newEngineMetrics(reg)
	for i, d := range s.shards {
		d.setMetrics(m.shard(i))
	}
	registerTerms(reg, s.dict)
	registerViewStorage(reg, s)
}
