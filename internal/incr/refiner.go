package incr

import (
	"fmt"
	"sync"

	"repro/internal/matrix"
	"repro/internal/refine"
	"repro/internal/rules"
)

// RefineMode selects the search strategy a Refiner re-runs.
type RefineMode int

// Modes.
const (
	// ModeLowestK finds the smallest k admitting a refinement at the
	// fixed threshold Theta1/Theta2.
	ModeLowestK RefineMode = iota
	// ModeHighestTheta finds the highest threshold at the fixed K.
	ModeHighestTheta
)

// RefinerOptions configures a Refiner.
type RefinerOptions struct {
	// Rule enables the exact engine; Fn is the evaluator (one of the
	// two must be set, as in refine.Problem).
	Rule *rules.Rule
	Fn   rules.Func
	Mode RefineMode
	// K is the sort budget for ModeHighestTheta.
	K int
	// Theta1/Theta2 is the threshold for ModeLowestK.
	Theta1, Theta2 int64
	// Drift is the σ-drift policy: a refresh re-runs the search only
	// when the dataset's σ moved at least this far (absolute) from its
	// value at the previous refinement. 0 means any mutation triggers;
	// the default 0.01 matches the paper's θ grid granularity.
	Drift float64
	// Search configures the underlying engine. Heuristic.Warm is
	// overwritten by the refiner: every re-run is warm-started from the
	// previous assignment via refine.WarmStart.
	Search refine.SearchOptions
}

// Result is one completed refinement against a snapshot.
type Result struct {
	// Epoch and View identify the snapshot the refinement was computed
	// against (View is that snapshot's immutable view).
	Epoch uint64
	View  *matrix.View
	// Outcome is the strategy result (refinement, θ or k found, timing).
	Outcome *refine.Outcome
	// Sigma is σ(D) at refinement time under the drift measure.
	Sigma float64
	// Warm reports whether the search was warm-started.
	Warm bool
}

// Refiner keeps a dataset's refinement warm under continuous updates:
// Refresh re-runs the configured search only when the σ-drift policy
// demands it, seeding the local search from the previous assignment
// (refine.WarmStart maps it across signature churn, new signatures
// joining the Hamming-nearest sort).
type Refiner struct {
	d    Engine
	opts RefinerOptions

	// runMu serializes searches; mu guards only last, so Last and
	// NeedsRefresh (and thus /stats) stay O(|P|) while a search runs.
	runMu sync.Mutex
	mu    sync.Mutex
	last  *Result
}

// NewRefiner returns a refiner for any live engine (a Dataset or a
// Sharded). Defaults: σCov, ModeLowestK at θ = 9/10, drift 0.01.
func NewRefiner(d Engine, opts RefinerOptions) *Refiner {
	if opts.Fn == nil && opts.Rule == nil {
		opts.Fn = rules.CovFunc()
	}
	if opts.Mode == ModeLowestK && opts.Theta2 == 0 {
		opts.Theta1, opts.Theta2 = 9, 10
	}
	if opts.Mode == ModeHighestTheta && opts.K == 0 {
		opts.K = 2
	}
	if opts.Drift == 0 {
		opts.Drift = 0.01
	}
	return &Refiner{d: d, opts: opts}
}

// Last returns the most recent result, or nil before the first Refresh.
func (r *Refiner) Last() *Result {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.last
}

// evalFn resolves the measure used for both the search and the drift
// policy.
func (r *Refiner) evalFn() rules.Func {
	if r.opts.Fn != nil {
		return r.opts.Fn
	}
	return rules.FuncForRule(r.opts.Rule)
}

// sigmaNow computes the dataset's current σ under the drift measure —
// O(|P|) for the counts closed forms, O(1) for pair-counts measures
// (σDep/σSymDep/compiled rules) when the live tracker is on, falling
// back to a snapshot evaluation otherwise. The drift poll runs after
// every mutation epoch, so avoiding the per-poll snapshot build
// matters for dependency-measure auto-refine.
func (r *Refiner) sigmaNow() (float64, error) {
	fn := r.evalFn()
	if cf, ok := fn.(rules.CountsFunc); ok {
		return r.d.Sigma(cf).Value(), nil
	}
	if pf, ok := fn.(rules.PairCountsFunc); ok {
		if ratio, live := r.d.SigmaPairs(pf); live {
			return ratio.Value(), nil
		}
	}
	v, err := fn.Eval(r.d.Snapshot().View)
	if err != nil {
		return 0, err
	}
	return v.Value(), nil
}

// NeedsRefresh reports whether a Refresh would re-run the search: no
// result yet, or the dataset mutated and σ drifted past the policy.
func (r *Refiner) NeedsRefresh() (bool, error) {
	last := r.Last()
	if last == nil {
		return true, nil
	}
	if r.d.Epoch() == last.Epoch {
		return false, nil
	}
	now, err := r.sigmaNow()
	if err != nil {
		return false, err
	}
	return abs(now-last.Sigma) >= r.opts.Drift, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Refresh re-runs the search when forced or when the drift policy
// triggers, and returns the governing result plus whether a new search
// ran. Concurrent Refresh calls serialize; each runs against the
// snapshot current at its start, so ingestion continues meanwhile.
func (r *Refiner) Refresh(force bool) (*Result, bool, error) {
	if !force {
		need, err := r.NeedsRefresh()
		if err != nil {
			return nil, false, err
		}
		if !need {
			return r.Last(), false, nil
		}
	}
	r.runMu.Lock()
	defer r.runMu.Unlock()
	last := r.Last()
	snap := r.d.Snapshot()
	if last != nil && last.Epoch == snap.Epoch && !force {
		return last, false, nil
	}
	if snap.View.NumSignatures() == 0 {
		return nil, false, fmt.Errorf("incr: refine on empty dataset")
	}
	search := r.opts.Search
	warm := false
	if last != nil && last.Outcome != nil && last.Outcome.Refinement != nil {
		if w := refine.WarmStart(last.View, last.Outcome.Refinement.Assignment, snap.View); w != nil {
			search.Heuristic.Warm = w
			warm = true
		}
	}
	var out *refine.Outcome
	var err error
	switch r.opts.Mode {
	case ModeHighestTheta:
		out, err = refine.HighestTheta(snap.View, r.opts.Rule, r.opts.Fn, r.opts.K, search)
	default:
		out, err = refine.LowestK(snap.View, r.opts.Rule, r.opts.Fn, r.opts.Theta1, r.opts.Theta2, search)
	}
	if err != nil {
		return nil, false, err
	}
	sigma, err := r.sigmaAt(snap)
	if err != nil {
		return nil, false, err
	}
	res := &Result{Epoch: snap.Epoch, View: snap.View, Outcome: out, Sigma: sigma, Warm: warm}
	r.mu.Lock()
	r.last = res
	r.mu.Unlock()
	return res, true, nil
}

// sigmaAt evaluates the drift measure against the refined snapshot
// itself, so Result.Sigma describes exactly the state the refinement
// was computed on even if ingestion advanced meanwhile.
func (r *Refiner) sigmaAt(snap *Snapshot) (float64, error) {
	v, err := r.evalFn().Eval(snap.View)
	if err != nil {
		return 0, err
	}
	return v.Value(), nil
}
