package incr

import (
	"bytes"
	"fmt"

	"repro/internal/matrix"
	"repro/internal/rdf"
	"repro/internal/rules"
	"repro/internal/term"
)

// This file is the engine half of the durability contract with
// internal/wal: a batch hook that taps every effective mutation under
// the shard lock (the write-ahead-log feed), and checkpoint
// export/restore that moves a shard's full state — triples, column
// space, Σ-count and pair aggregates, signature view, epoch — across a
// process restart. The engine stays storage-agnostic: it never touches
// a file; wal serializes what these APIs expose.

// BatchHook observes one effective batch (added > 0 or removed > 0). It
// is invoked synchronously under the dataset's write lock, immediately
// after the epoch advanced, with the raw batch as applied — so hook
// invocation order is exactly epoch order, the property a write-ahead
// log needs. epoch is the post-batch epoch.
//
// The slices are only valid for the duration of the call (callers reuse
// batch buffers); a hook must copy or serialize them before returning,
// and must be fast — it runs inside the ingest critical section.
//
// The raw batch may contain no-op entries (re-added present triples,
// removes of absent ones). Re-applying the same batch sequence to a
// dataset restored to the same prior state reproduces the exact same
// effective operations and epoch, so logging raw batches is
// replay-exact.
type BatchHook func(add, remove []rdf.IDTriple, epoch uint64)

// SetBatchHook installs the batch hook (nil uninstalls). It must be set
// before ingestion that needs logging begins; batches applied while no
// hook is installed are not observed.
func (d *Dataset) SetBatchHook(h BatchHook) {
	d.mu.Lock()
	d.hook = h
	d.mu.Unlock()
}

// SetBatchHook installs a per-shard batch hook: make is called once per
// shard index so each shard logs to its own stream. Epochs passed to
// the hooks are per-shard epochs.
func (s *Sharded) SetBatchHook(h func(shard int, add, remove []rdf.IDTriple, epoch uint64)) {
	for i, d := range s.shards {
		if h == nil {
			d.SetBatchHook(nil)
			continue
		}
		i := i
		d.SetBatchHook(func(add, remove []rdf.IDTriple, epoch uint64) { h(i, add, remove, epoch) })
	}
}

// Shards exposes the per-shard datasets in shard index order — the
// handles the durability layer needs to checkpoint and recover each
// shard (WAL records replay through ApplyIDs on the owning shard).
// Routing new triples must go through the Sharded surface, which
// preserves subject-hash placement; callers of Shards must only apply
// operations already attributed to a shard (recovery replay) or read.
// A single-Dataset engine is its own one-element "shard list".
func (s *Sharded) Shards() []*Dataset { return s.shards }

// CheckpointState is a consistent copy of one shard's full state at an
// epoch, exported under the shard lock. Triples are the authoritative
// payload — restore replays them through the normal ingestion path —
// while the aggregates (tracker, pairs, view) are integrity pins: a
// restore that does not rebuild bit-identical aggregates fails loudly,
// catching corrupted checkpoints and cross-version drift in the
// incremental maintenance logic before the engine can serve wrong σ.
type CheckpointState struct {
	Epoch   uint64
	Added   uint64
	Removed uint64
	// PropIDs is the append-only column space in column order (retired
	// columns included), as dictionary IDs.
	PropIDs []term.ID
	// Triples is the live triple set in graph insertion order.
	Triples []rdf.IDTriple
	// Tracker is the Σ-count state (N_p, |S|, 1-entries).
	Tracker *rules.CountTracker
	// Pairs is the pairwise co-occurrence state; nil when pair tracking
	// is disabled (Options.DisablePairCounts).
	Pairs *rules.PairTracker
	// View is the signature view at Epoch (the snapshot the engine
	// would serve), canonical per matrix.View.AppendBinary.
	View *matrix.View
}

// ExportCheckpoint copies the dataset's state under a read lock. The
// returned state shares nothing mutable with the live dataset except
// the immutable snapshot view.
func (d *Dataset) ExportCheckpoint() *CheckpointState {
	d.mu.RLock()
	defer d.mu.RUnlock()
	propIDs := make([]term.ID, len(d.props))
	for id, i := range d.propIndex {
		propIDs[i] = id
	}
	triples := make([]rdf.IDTriple, 0, d.g.Len())
	d.g.EachTripleID(func(it rdf.IDTriple) { triples = append(triples, it) })
	st := &CheckpointState{
		Epoch:   d.epoch,
		Added:   d.added,
		Removed: d.removed,
		PropIDs: propIDs,
		Triples: triples,
		Tracker: d.tracker.Clone(),
		View:    d.snapshotLocked().View,
	}
	if d.pairs != nil {
		st.Pairs = d.pairs.Clone()
	}
	return st
}

// RestoreCheckpoint loads an exported state into an empty dataset whose
// dictionary already resolves every referenced ID (the dictionary log
// replays first). The column space is pre-seeded in checkpoint order,
// the triples replay through the normal per-triple ingestion path, and
// the rebuilt aggregates are then verified bit-identical to the
// checkpointed ones — any mismatch is a hard error, never a silently
// drifted engine. On success the dataset is at the checkpoint's epoch
// with its snapshot cache pre-warmed.
func (d *Dataset) RestoreCheckpoint(st *CheckpointState) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.epoch != 0 || d.g.Len() != 0 || len(d.props) != 0 {
		return fmt.Errorf("incr: restore into non-empty dataset (epoch %d, %d triples)", d.epoch, d.g.Len())
	}
	if (d.pairs == nil) != (st.Pairs == nil) {
		return fmt.Errorf("incr: restore pair-tracking mismatch (engine %v, checkpoint %v)",
			d.pairs != nil, st.Pairs != nil)
	}
	dict := d.g.Dict()
	dictLen := term.ID(dict.Len())

	// Pre-seed the column space so replayed triples land on the same
	// column indices the checkpointed aggregates use.
	for i, id := range st.PropIDs {
		if id >= dictLen {
			return fmt.Errorf("incr: restore: property column %d has ID %d past dictionary (%d terms)", i, id, dictLen)
		}
		if _, dup := d.propIndex[id]; dup {
			return fmt.Errorf("incr: restore: duplicate property column ID %d", id)
		}
		d.props = append(d.props, dict.String(id))
		d.propIndex[id] = i
	}
	d.tracker.Grow(len(d.props))
	if d.pairs != nil {
		d.pairs.Grow(len(d.props))
	}

	for i, it := range st.Triples {
		if it.S >= dictLen || it.P >= dictLen || it.O >= dictLen {
			return fmt.Errorf("incr: restore: triple %d references ID past dictionary (%d terms)", i, dictLen)
		}
		if it.OKind > rdf.Literal {
			return fmt.Errorf("incr: restore: triple %d has bad object kind %d", i, it.OKind)
		}
		if !d.applyAdd(it) {
			return fmt.Errorf("incr: restore: duplicate triple %d in checkpoint", i)
		}
	}
	if len(d.props) != len(st.PropIDs) {
		return fmt.Errorf("incr: restore: replay grew %d columns past the checkpoint's %d",
			len(d.props), len(st.PropIDs))
	}

	// Integrity pins: the replayed aggregates must be bit-identical to
	// the checkpointed ones.
	if !d.tracker.Equal(st.Tracker) {
		return fmt.Errorf("incr: restore: replayed Σ-counts diverge from checkpoint")
	}
	if d.pairs != nil && !d.pairs.Equal(st.Pairs) {
		return fmt.Errorf("incr: restore: replayed pair counts diverge from checkpoint")
	}
	view := d.buildView()
	if !bytes.Equal(view.AppendBinary(nil), st.View.AppendBinary(nil)) {
		return fmt.Errorf("incr: restore: replayed signature view diverges from checkpoint")
	}

	d.epoch = st.Epoch
	d.added = st.Added
	d.removed = st.Removed
	d.snap.Store(&Snapshot{Epoch: st.Epoch, View: view})
	return nil
}
