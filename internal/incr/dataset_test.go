package incr

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/datagen"
	"repro/internal/matrix"
	"repro/internal/rdf"
	"repro/internal/refine"
	"repro/internal/rules"
)

// assertViewsEqual checks bit-identity of two views: same property
// columns, same signature order, bits, counts and subject lists.
func assertViewsEqual(t *testing.T, label string, got, want *matrix.View) {
	t.Helper()
	if got.NumSubjects() != want.NumSubjects() {
		t.Fatalf("%s: subjects = %d, want %d", label, got.NumSubjects(), want.NumSubjects())
	}
	gp, wp := got.Properties(), want.Properties()
	if len(gp) != len(wp) {
		t.Fatalf("%s: properties = %v, want %v", label, gp, wp)
	}
	for i := range gp {
		if gp[i] != wp[i] {
			t.Fatalf("%s: property[%d] = %q, want %q", label, i, gp[i], wp[i])
		}
	}
	gs, ws := got.Signatures(), want.Signatures()
	if len(gs) != len(ws) {
		t.Fatalf("%s: %d signatures, want %d", label, len(gs), len(ws))
	}
	for i := range gs {
		if gs[i].Bits.String() != ws[i].Bits.String() || gs[i].Count != ws[i].Count {
			t.Fatalf("%s: signature %d = %s×%d, want %s×%d",
				label, i, gs[i].Bits, gs[i].Count, ws[i].Bits, ws[i].Count)
		}
		if len(gs[i].Subjects) != len(ws[i].Subjects) {
			t.Fatalf("%s: signature %d has %d subjects, want %d",
				label, i, len(gs[i].Subjects), len(ws[i].Subjects))
		}
		for j := range gs[i].Subjects {
			if gs[i].Subjects[j] != ws[i].Subjects[j] {
				t.Fatalf("%s: signature %d subject %d = %q, want %q",
					label, i, j, gs[i].Subjects[j], ws[i].Subjects[j])
			}
		}
	}
}

// assertRatioEqual checks exact (big-int) equality of two ratios.
func assertRatioEqual(t *testing.T, label string, got, want rules.Ratio) {
	t.Helper()
	if got.Fav.Cmp(want.Fav) != 0 || got.Tot.Cmp(want.Tot) != 0 {
		t.Fatalf("%s: %s, want %s", label, got, want)
	}
}

// checkAgainstRebuild compares the incremental snapshot with a
// from-scratch matrix.FromGraph rebuild over the same alive triples.
func checkAgainstRebuild(t *testing.T, label string, d *Dataset, alive []rdf.Triple) {
	t.Helper()
	g := rdf.NewGraph()
	for _, tr := range alive {
		g.Add(tr)
	}
	want := matrix.FromGraph(g, matrix.Options{KeepSubjects: true})
	snap := d.Snapshot()
	assertViewsEqual(t, label, snap.View, want)
	assertRatioEqual(t, label+" σCov", d.SigmaCov(), rules.Coverage(want))
	assertRatioEqual(t, label+" σSim", d.SigmaSim(), rules.Similarity(want))
	// The live pair-count tracker must agree with the rebuilt view for
	// dependency measures over present, repeated and absent properties.
	props := want.Properties()
	pairs := [][2]string{{"http://never/seen", "http://never/seen2"}}
	if len(props) > 0 {
		p1, p2 := props[0], props[len(props)-1]
		pairs = append(pairs, [2]string{p1, p2}, [2]string{p2, p1}, [2]string{p1, p1}, [2]string{p1, "http://never/seen"})
	}
	for _, pp := range pairs {
		for _, fn := range []rules.Func{
			rules.DepFunc(pp[0], pp[1]),
			rules.SymDepFunc(pp[0], pp[1]),
			rules.DepDisjFunc(pp[0], pp[1]),
		} {
			got, live := d.SigmaPairs(fn.(rules.PairCountsFunc))
			if !live {
				t.Fatalf("%s: pair tracking unexpectedly off", label)
			}
			wantR, err := fn.Eval(want)
			if err != nil {
				t.Fatal(err)
			}
			assertRatioEqual(t, fmt.Sprintf("%s live %s", label, fn.Name()), got, wantR)
		}
	}
}

// TestIncrementalEquivalenceRandomized drives a seeded interleaving of
// add/remove batches over generator-derived and synthetic triples and
// asserts, at checkpoints, that the incremental snapshot is
// bit-identical to a batch rebuild — signatures, σCov, σSim.
func TestIncrementalEquivalenceRandomized(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			// Triple pool: a real generator graph (structured signatures,
			// rdf:type churn) plus synthetic triples over tight alphabets
			// (forces property retirement/revival and multi-valued
			// predicates).
			pool := datagen.MixedDrugSultans(datagen.MixedOptions{
				DrugCompanies: 10, Sultans: 8, SparseSultans: 3, Seed: seed,
			}).Triples()
			for i := 0; i < 300; i++ {
				s := fmt.Sprintf("http://syn/s%d", rng.Intn(20))
				p := fmt.Sprintf("http://syn/p%d", rng.Intn(6))
				o := fmt.Sprintf("http://syn/o%d", rng.Intn(4))
				tr := rdf.Triple{Subject: s, Predicate: p, Object: rdf.NewURI(o)}
				if rng.Intn(5) == 0 {
					tr = rdf.Triple{Subject: s, Predicate: rdf.TypeURI, Object: rdf.NewURI(o)}
				}
				pool = append(pool, tr)
			}

			d := NewDataset(Options{KeepSubjects: true})
			var alive []rdf.Triple
			aliveIdx := map[rdf.Triple]int{}
			for batch := 0; batch < 60; batch++ {
				var add, remove []rdf.Triple
				n := 1 + rng.Intn(25)
				for i := 0; i < n; i++ {
					if len(alive) > 0 && rng.Intn(3) == 0 {
						remove = append(remove, alive[rng.Intn(len(alive))])
					} else {
						add = append(add, pool[rng.Intn(len(pool))])
					}
				}
				d.Apply(add, remove)
				// Mirror the dataset's semantics: adds first, then removes.
				for _, tr := range add {
					if _, ok := aliveIdx[tr]; !ok {
						aliveIdx[tr] = len(alive)
						alive = append(alive, tr)
					}
				}
				for _, tr := range remove {
					if i, ok := aliveIdx[tr]; ok {
						last := alive[len(alive)-1]
						alive[i] = last
						aliveIdx[last] = i
						alive = alive[:len(alive)-1]
						delete(aliveIdx, tr)
					}
				}
				if batch%10 == 9 {
					checkAgainstRebuild(t, fmt.Sprintf("batch %d", batch), d, alive)
				}
			}
			// Drain to empty and check the degenerate state too.
			d.Apply(nil, alive)
			checkAgainstRebuild(t, "drained", d, nil)
			st := d.Stats()
			if st.Triples != 0 || st.Subjects != 0 || st.Signatures != 0 || st.Properties != 0 {
				t.Fatalf("drained stats = %+v", st)
			}
		})
	}
}

// TestFromGraphMatchesBatch checks the preloaded constructor against
// FromGraph on a generator dataset, before and after removing every
// triple of a few subjects.
func TestFromGraphMatchesBatch(t *testing.T) {
	g := datagen.WordNetNounsGraph(0.002)
	d := FromGraph(g, Options{KeepSubjects: true})
	alive := append([]rdf.Triple(nil), g.Triples()...)
	checkAgainstRebuild(t, "preload", d, alive)

	// Retire two subjects entirely.
	victims := map[string]bool{}
	for _, s := range g.Subjects()[:2] {
		victims[s] = true
	}
	var remove, rest []rdf.Triple
	for _, tr := range alive {
		if victims[tr.Subject] {
			remove = append(remove, tr)
		} else {
			rest = append(rest, tr)
		}
	}
	d.Apply(nil, remove)
	checkAgainstRebuild(t, "after subject retirement", d, rest)
}

// TestSnapshotImmutableAcrossEpochs pins copy-on-write: a snapshot
// taken before a batch is unchanged by it, and epochs advance only on
// effective mutations.
func TestSnapshotImmutableAcrossEpochs(t *testing.T) {
	d := NewDataset(Options{})
	d.Apply([]rdf.Triple{
		{Subject: "s1", Predicate: "p", Object: rdf.NewURI("o")},
		{Subject: "s2", Predicate: "q", Object: rdf.NewURI("o")},
	}, nil)
	s1 := d.Snapshot()
	if s1.Epoch != 1 {
		t.Fatalf("epoch = %d, want 1", s1.Epoch)
	}
	if got := d.Snapshot(); got != s1 {
		t.Fatal("unchanged dataset rebuilt its snapshot")
	}
	// A no-op batch (duplicate add, absent remove) keeps the epoch.
	d.Apply([]rdf.Triple{{Subject: "s1", Predicate: "p", Object: rdf.NewURI("o")}},
		[]rdf.Triple{{Subject: "zz", Predicate: "p", Object: rdf.NewURI("o")}})
	if got := d.Snapshot(); got != s1 {
		t.Fatal("no-op batch invalidated the snapshot")
	}
	before := s1.View.Describe(10)
	d.Apply([]rdf.Triple{{Subject: "s3", Predicate: "p", Object: rdf.NewURI("o")}}, nil)
	s2 := d.Snapshot()
	if s2.Epoch != 2 || s2 == s1 {
		t.Fatalf("epoch = %d (snap aliased: %v)", s2.Epoch, s2 == s1)
	}
	if s1.View.Describe(10) != before {
		t.Fatal("old snapshot mutated by later batch")
	}
	if s1.View.NumSubjects() != 2 || s2.View.NumSubjects() != 3 {
		t.Fatalf("subjects: old %d new %d", s1.View.NumSubjects(), s2.View.NumSubjects())
	}
}

// TestConcurrentReadersDuringIngestion hammers Apply from a writer
// goroutine while readers take snapshots and σ values; run under -race
// this is the data-race acceptance check.
func TestConcurrentReadersDuringIngestion(t *testing.T) {
	d := NewDataset(Options{KeepSubjects: true})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(3))
		var alive []rdf.Triple
		for i := 0; i < 400; i++ {
			var add, remove []rdf.Triple
			for j := 0; j < 10; j++ {
				tr := rdf.Triple{
					Subject:   fmt.Sprintf("s%d", rng.Intn(40)),
					Predicate: fmt.Sprintf("p%d", rng.Intn(8)),
					Object:    rdf.NewURI(fmt.Sprintf("o%d", rng.Intn(5))),
				}
				if len(alive) > 0 && rng.Intn(3) == 0 {
					remove = append(remove, alive[rng.Intn(len(alive))])
				} else {
					add = append(add, tr)
					alive = append(alive, tr)
				}
			}
			d.Apply(add, remove)
		}
		close(stop)
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := d.Snapshot()
				if snap.View.NumSubjects() < 0 {
					t.Error("negative subjects")
				}
				_ = d.SigmaCov()
				_ = d.SigmaSim()
				_ = d.Stats()
			}
		}()
	}
	wg.Wait()
	// Final state must still agree with a rebuild.
	checkAgainstRebuild(t, "post-concurrency", d, d.gTriples())
}

// gTriples returns the live triples (test helper).
func (d *Dataset) gTriples() []rdf.Triple {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.g.Triples()
}

// TestRefinerDriftAndWarmStart checks the σ-drift policy and that
// re-refinement is warm-started.
func TestRefinerDriftAndWarmStart(t *testing.T) {
	d := NewDataset(Options{})
	var batch []rdf.Triple
	for i := 0; i < 30; i++ {
		s := fmt.Sprintf("http://ex/a%d", i)
		batch = append(batch,
			rdf.Triple{Subject: s, Predicate: "p", Object: rdf.NewURI("o")},
			rdf.Triple{Subject: s, Predicate: "q", Object: rdf.NewURI("o")})
	}
	for i := 0; i < 30; i++ {
		s := fmt.Sprintf("http://ex/b%d", i)
		batch = append(batch,
			rdf.Triple{Subject: s, Predicate: "r", Object: rdf.NewURI("o")},
			rdf.Triple{Subject: s, Predicate: "t", Object: rdf.NewURI("o")})
	}
	d.Apply(batch, nil)

	r := NewRefiner(d, RefinerOptions{
		Fn: rules.CovFunc(), Mode: ModeLowestK, Theta1: 9, Theta2: 10,
		Search: refine.SearchOptions{Engine: refine.EngineHeuristic, Workers: 1,
			Heuristic: refine.HeuristicOptions{Seed: 1}},
	})
	res, ran, err := r.Refresh(false)
	if err != nil {
		t.Fatal(err)
	}
	if !ran || res == nil {
		t.Fatal("first refresh did not run")
	}
	if res.Warm {
		t.Fatal("first refresh claims warm start")
	}
	if res.Outcome.K != 2 {
		t.Fatalf("lowest k = %d, want 2 (two clean sorts)", res.Outcome.K)
	}

	// No mutation → no refresh.
	if _, ran, _ := r.Refresh(false); ran {
		t.Fatal("refresh ran without mutation")
	}
	// A tiny mutation below the drift threshold → no refresh.
	d.Apply([]rdf.Triple{{Subject: "http://ex/a0", Predicate: "p",
		Object: rdf.NewURI("o2")}}, nil)
	if _, ran, _ := r.Refresh(false); ran {
		t.Fatal("refresh ran below drift threshold")
	}
	// A structural change (new ragged subjects) → drift triggers and the
	// re-run is warm-started.
	var churn []rdf.Triple
	for i := 0; i < 20; i++ {
		s := fmt.Sprintf("http://ex/c%d", i)
		churn = append(churn, rdf.Triple{Subject: s, Predicate: "p", Object: rdf.NewURI("o")})
	}
	d.Apply(churn, nil)
	res2, ran, err := r.Refresh(false)
	if err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("refresh did not run after drift")
	}
	if !res2.Warm {
		t.Fatal("re-refinement not warm-started")
	}
	if res2.Epoch == res.Epoch {
		t.Fatal("result epoch not advanced")
	}
}

// Disabling the pair tracker must route SigmaPairs callers to the
// snapshot fallback.
func TestDisablePairCounts(t *testing.T) {
	d := NewDataset(Options{DisablePairCounts: true})
	d.Apply([]rdf.Triple{
		{Subject: "http://s1", Predicate: "http://p1", Object: rdf.NewURI("http://o")},
		{Subject: "http://s1", Predicate: "http://p2", Object: rdf.NewURI("http://o")},
	}, nil)
	if d.PairsTracked() {
		t.Fatal("PairsTracked should be false")
	}
	fn := rules.DepFunc("http://p1", "http://p2").(rules.PairCountsFunc)
	if _, live := d.SigmaPairs(fn); live {
		t.Fatal("SigmaPairs should report not-live when disabled")
	}
	// The snapshot path still answers.
	got, err := rules.DepFunc("http://p1", "http://p2").Eval(d.Snapshot().View)
	if err != nil {
		t.Fatal(err)
	}
	if got.Value() != 1 {
		t.Fatalf("snapshot Dep = %v, want 1", got)
	}
}
