package incr

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/bitset"
	"repro/internal/datagen"
	"repro/internal/matrix"
	"repro/internal/rules"
)

// TestWideConcurrentSnapshotWhileIngest hammers the wide scenario —
// the shape that routes the engine through the compressed-container
// and sparse pair-tracker paths — with snapshot readers, σ evaluators
// and storage-accounting scrapes racing a batched ingest. Run under
// -race this pins the copy-on-write discipline of the adaptive tier;
// the final state must still be bit-identical to the batch build.
func TestWideConcurrentSnapshotWhileIngest(t *testing.T) {
	defer bitset.SetPolicy(bitset.SetPolicy(bitset.PolicyAdaptive))
	// 3000 columns: far enough past the adaptive thresholds that even
	// the shard-local column spaces (each shard sees a third of the
	// subjects) cross into compressed containers, so the racing readers
	// observe sparse state while batches land.
	g := datagen.WideSchemaGraph(datagen.WideAtScale(0.15, 21))
	triples := g.Triples()

	engines := map[string]Engine{
		"single":  NewDataset(Options{}),
		"sharded": NewSharded(3, Options{}),
	}
	for name, d := range engines {
		t.Run(name, func(t *testing.T) {
			done := make(chan struct{})
			var wg sync.WaitGroup
			for r := 0; r < 3; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-done:
							return
						default:
						}
						snap := d.Snapshot()
						if snap.View != nil {
							_ = rules.Coverage(snap.View)
							_ = snap.View.StorageStats()
						}
						_ = d.SigmaCov()
						_ = d.ViewStorage()
					}
				}()
			}
			const batch = 256
			for i := 0; i < len(triples); i += batch {
				end := i + batch
				if end > len(triples) {
					end = len(triples)
				}
				d.Apply(triples[i:end], nil)
			}
			close(done)
			wg.Wait()

			want := matrix.FromGraph(g, matrix.Options{}).AppendBinary(nil)
			got := d.Snapshot().View.AppendBinary(nil)
			if name == "sharded" {
				// Shard views merge into the global one; the merged view
				// must match the batch build bit-for-bit.
				var views []*matrix.View
				for _, sh := range d.(*Sharded).Shards() {
					views = append(views, sh.Snapshot().View)
				}
				merged, err := matrix.MergeViews(views...)
				if err != nil {
					t.Fatal(err)
				}
				got = merged.AppendBinary(nil)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("post-ingest view differs from batch FromGraph build")
			}

			vs := d.ViewStorage()
			if vs.SparseSigs == 0 {
				t.Fatalf("wide ingest produced no compressed signatures: %+v", vs)
			}
			if vs.ViewBytes <= 0 || vs.TrackerBytes <= 0 {
				t.Fatalf("implausible storage accounting: %+v", vs)
			}
		})
	}
}
