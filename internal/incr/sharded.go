package incr

import (
	"context"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/matrix"
	"repro/internal/metrics"
	"repro/internal/rdf"
	"repro/internal/rules"
	"repro/internal/term"
)

// Engine is the live-dataset surface shared by the single Dataset and
// the sharded engine: triple ingestion, live σ reads and consistent
// snapshots. internal/serve and the Refiner program against it, so a
// service picks its parallelism by constructor (NewDataset vs
// NewSharded) without touching the read or refinement paths.
type Engine interface {
	Apply(add, remove []rdf.Triple) (added, removed int)
	ApplyIDs(add, remove []rdf.IDTriple) (added, removed int)
	AddStream(batchSize int, read func(emit func(rdf.Triple) error) error) (added int, err error)
	AddStreamIDs(batchSize int, read func(emit func(rdf.IDTriple) error) error) (added int, err error)
	AddNTriples(r io.Reader, batchSize int) (added int, err error)
	// AddNTriplesCtx is AddNTriples bounded by ctx: the decode loop
	// checks the context periodically and stops with ctx.Err() mid-
	// stream (triples already applied stay applied and are reflected in
	// added) — how the serving tier propagates request deadlines into a
	// streaming ingest.
	AddNTriplesCtx(ctx context.Context, r io.Reader, batchSize int) (added int, err error)
	Dict() *term.Dict
	Snapshot() *Snapshot
	Sigma(fn rules.CountsFunc) rules.Ratio
	SigmaCov() rules.Ratio
	SigmaSim() rules.Ratio
	SigmaPairs(fn rules.PairCountsFunc) (rules.Ratio, bool)
	PairsTracked() bool
	Stats() Stats
	// ViewStorage reports the signature-storage breakdown of the
	// engine's current snapshot (dense vs compressed container counts,
	// estimated bytes) plus the live pair-tracker footprint — the
	// observability surface behind /stats and the rdf_view_bytes gauge.
	ViewStorage() ViewStorage
	Epoch() uint64
	Contains(t rdf.Triple) bool
	// RegisterMetrics registers the engine's ingest instrumentation
	// (per-shard triple counters, batch-size histograms, epoch and
	// signature gauges) into reg and installs the taps. At most once
	// per registry.
	RegisterMetrics(reg *metrics.Registry)
}

var (
	_ Engine = (*Dataset)(nil)
	_ Engine = (*Sharded)(nil)
)

// Sharded is a live dataset partitioned into N subject-hash shards,
// each a full Dataset (own mutex, signature sets, count and pair
// trackers) over one shared term dictionary. Batches touching
// different subjects land on different shards and proceed in parallel
// with zero lock contention — the ingest scalability the single
// Dataset's writer mutex caps at one core.
//
// Sharding by subject preserves the paper's semantics exactly: a
// subject's signature is a function of its own triples alone, so every
// signature, every N_p increment, every C[p1][p2] pair and every |S|
// unit lives wholly in one shard, and the cross-shard aggregates are
// plain sums (rules.CountTracker.Merge / PairTracker.Merge) while
// merged snapshots are signature-level unions (matrix.MergeViews) —
// bit-identical to a single Dataset fed the same stream.
//
// With one shard every method delegates directly to the inner Dataset:
// single-shard mode is the exact unsharded code path.
type Sharded struct {
	dict   *term.Dict
	opts   Options
	shards []*Dataset
	// snap caches the merged snapshot keyed by the composite epoch (the
	// sum of per-shard epochs — strictly increasing per mutating batch,
	// since shard epochs never decrease).
	snap atomic.Pointer[Snapshot]
}

// NewSharded returns an empty sharded dataset with n subject-hash
// shards (n < 1 is treated as 1) sharing one term dictionary.
func NewSharded(n int, opts Options) *Sharded {
	if n < 1 {
		n = 1
	}
	s := &Sharded{dict: term.NewDict(), opts: opts, shards: make([]*Dataset, n)}
	for i := range s.shards {
		s.shards[i] = NewDatasetWithDict(s.dict, opts)
	}
	return s
}

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Dict returns the shared term dictionary. Interning is safe
// concurrently with ingestion on any shard.
func (s *Sharded) Dict() *term.Dict { return s.dict }

// shardOf routes a subject to its shard: a 32-bit integer mix of the
// interned subject ID modulo the shard count. Any deterministic
// function of the subject alone preserves exactness (the merge is
// additive over any subject-disjoint partition); the mix just spreads
// the dense first-sight IDs evenly.
func (s *Sharded) shardOf(subj term.ID) int {
	x := uint32(subj)
	x ^= x >> 16
	x *= 0x7feb352d
	x ^= x >> 15
	x *= 0x846ca68b
	x ^= x >> 16
	return int(x % uint32(len(s.shards)))
}

// internTriple interns t's terms into the shared dictionary.
func (s *Sharded) internTriple(t rdf.Triple) rdf.IDTriple {
	return rdf.IDTriple{
		S:     s.dict.Intern(t.Subject),
		P:     s.dict.Intern(t.Predicate),
		O:     s.dict.Intern(t.Object.Value),
		OKind: t.Object.Kind,
	}
}

// lookupTriple resolves t without growing the dictionary (the remove
// path: a triple with never-seen terms cannot be present anywhere).
func (s *Sharded) lookupTriple(t rdf.Triple) (it rdf.IDTriple, ok bool) {
	if it.S, ok = s.dict.Lookup(t.Subject); !ok {
		return rdf.IDTriple{}, false
	}
	if it.P, ok = s.dict.Lookup(t.Predicate); !ok {
		return rdf.IDTriple{}, false
	}
	if it.O, ok = s.dict.Lookup(t.Object.Value); !ok {
		return rdf.IDTriple{}, false
	}
	it.OKind = t.Object.Kind
	return it, true
}

// Apply partitions the batch by subject shard and applies the per-shard
// sub-batches concurrently, one goroutine per touched shard. Dataset
// batch semantics hold per shard (adds first, then removes, each
// deduplicated); since a triple's shard is a function of its subject,
// the interleaving across shards cannot reorder operations on the same
// triple.
func (s *Sharded) Apply(add, remove []rdf.Triple) (added, removed int) {
	if len(s.shards) == 1 {
		return s.shards[0].Apply(add, remove)
	}
	addB := make([][]rdf.IDTriple, len(s.shards))
	remB := make([][]rdf.IDTriple, len(s.shards))
	for _, t := range add {
		it := s.internTriple(t)
		sh := s.shardOf(it.S)
		addB[sh] = append(addB[sh], it)
	}
	for _, t := range remove {
		if it, ok := s.lookupTriple(t); ok {
			sh := s.shardOf(it.S)
			remB[sh] = append(remB[sh], it)
		}
	}
	return s.applyShards(addB, remB)
}

// ApplyIDs is Apply over pre-interned triples (IDs must come from this
// engine's dictionary).
func (s *Sharded) ApplyIDs(add, remove []rdf.IDTriple) (added, removed int) {
	if len(s.shards) == 1 {
		return s.shards[0].ApplyIDs(add, remove)
	}
	addB := make([][]rdf.IDTriple, len(s.shards))
	remB := make([][]rdf.IDTriple, len(s.shards))
	for _, it := range add {
		sh := s.shardOf(it.S)
		addB[sh] = append(addB[sh], it)
	}
	for _, it := range remove {
		sh := s.shardOf(it.S)
		remB[sh] = append(remB[sh], it)
	}
	return s.applyShards(addB, remB)
}

// applyShards runs the partitioned batches, in parallel when more than
// one shard is touched.
func (s *Sharded) applyShards(addB, remB [][]rdf.IDTriple) (added, removed int) {
	addN := make([]int, len(s.shards))
	remN := make([]int, len(s.shards))
	var wg sync.WaitGroup
	for i := range s.shards {
		if len(addB[i]) == 0 && len(remB[i]) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			addN[i], remN[i] = s.shards[i].ApplyIDs(addB[i], remB[i])
		}(i)
	}
	wg.Wait()
	for i := range s.shards {
		added += addN[i]
		removed += remN[i]
	}
	return added, removed
}

// AddStream applies triples from a streaming reader through the
// per-shard ingest worker pool (see AddStreamIDs), interning at the
// routing edge.
func (s *Sharded) AddStream(batchSize int, read func(emit func(rdf.Triple) error) error) (added int, err error) {
	if len(s.shards) == 1 {
		return s.shards[0].AddStream(batchSize, read)
	}
	return s.AddStreamIDs(batchSize, func(emit func(rdf.IDTriple) error) error {
		return read(func(t rdf.Triple) error { return emit(s.internTriple(t)) })
	})
}

// AddStreamIDs streams interned triples through a per-shard ingest
// worker pool: the reader routes each triple to its subject's shard
// batch, and one worker goroutine per shard applies full batches while
// the reader keeps decoding — so a single parse pass feeds N shards
// mutating concurrently. batchSize bounds each shard's in-flight batch
// (default 10000 per shard). On a read error, triples emitted before
// it remain applied and are reflected in added.
func (s *Sharded) AddStreamIDs(batchSize int, read func(emit func(rdf.IDTriple) error) error) (added int, err error) {
	if len(s.shards) == 1 {
		return s.shards[0].AddStreamIDs(batchSize, read)
	}
	if batchSize <= 0 {
		batchSize = 10000
	}
	chans := make([]chan []rdf.IDTriple, len(s.shards))
	counts := make([]int, len(s.shards))
	var wg sync.WaitGroup
	for i := range s.shards {
		chans[i] = make(chan []rdf.IDTriple, 2)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for batch := range chans[i] {
				a, _ := s.shards[i].ApplyIDs(batch, nil)
				counts[i] += a
			}
		}(i)
	}
	batches := make([][]rdf.IDTriple, len(s.shards))
	err = read(func(it rdf.IDTriple) error {
		sh := s.shardOf(it.S)
		b := append(batches[sh], it)
		if len(b) >= batchSize {
			chans[sh] <- b
			b = nil // the worker owns the sent batch; start a fresh one
		}
		batches[sh] = b
		return nil
	})
	for i, b := range batches {
		if len(b) > 0 {
			chans[i] <- b
		}
		close(chans[i])
	}
	wg.Wait()
	for _, c := range counts {
		added += c
	}
	return added, err
}

// AddNTriples streams an N-Triples document through the interning
// decoder into the shard worker pool — the rdfserved raw-body ingest
// path.
func (s *Sharded) AddNTriples(r io.Reader, batchSize int) (added int, err error) {
	return s.AddStreamIDs(batchSize, func(emit func(rdf.IDTriple) error) error {
		return rdf.ReadNTriplesIDs(r, s.dict, emit)
	})
}

// AddNTriplesCtx is AddNTriples bounded by ctx (see Engine).
func (s *Sharded) AddNTriplesCtx(ctx context.Context, r io.Reader, batchSize int) (added int, err error) {
	return s.AddStreamIDs(batchSize, func(emit func(rdf.IDTriple) error) error {
		return rdf.ReadNTriplesIDs(r, s.dict, ctxEmit(ctx, emit))
	})
}

// rlockAll takes every shard's read lock in index order, establishing
// an atomic cut across shards for merged reads. The fixed order plus
// single-shard writers (Apply workers hold one shard lock each, never
// two) makes this deadlock-free.
func (s *Sharded) rlockAll() {
	for _, d := range s.shards {
		d.mu.RLock()
	}
}

func (s *Sharded) runlockAll() {
	for _, d := range s.shards {
		d.mu.RUnlock()
	}
}

// Epoch returns the composite epoch: the sum of per-shard epochs.
// Shard epochs never decrease, so the composite strictly increases
// with every effective mutation anywhere.
func (s *Sharded) Epoch() uint64 {
	if len(s.shards) == 1 {
		return s.shards[0].Epoch()
	}
	s.rlockAll()
	defer s.runlockAll()
	var sum uint64
	for _, d := range s.shards {
		sum += d.epoch
	}
	return sum
}

// Snapshot returns the merged immutable view of the current composite
// epoch: per-shard snapshots (each cached per shard epoch) taken under
// an all-shard read cut, merged with matrix.MergeViews — bit-identical
// to matrix.FromGraph on the union triple set. The merged snapshot is
// cached per composite epoch, so repeated reads between mutations cost
// one pointer load, and a mutation on one shard rebuilds only that
// shard's view plus the merge.
func (s *Sharded) Snapshot() *Snapshot {
	if len(s.shards) == 1 {
		return s.shards[0].Snapshot()
	}
	s.rlockAll()
	var composite uint64
	views := make([]*matrix.View, len(s.shards))
	for i, d := range s.shards {
		composite += d.epoch
		views[i] = d.snapshotLocked().View
	}
	s.runlockAll()
	// The per-shard views are immutable; the cut is fixed, so the merge
	// can run outside the locks.
	if cached := s.snap.Load(); cached != nil && cached.Epoch == composite {
		return cached
	}
	v, err := matrix.MergeViews(views...)
	if err != nil {
		// Unreachable: shard snapshots share Options, so subject lists
		// are uniformly present or absent and patterns are well-formed.
		panic("incr: sharded snapshot merge: " + err.Error())
	}
	snap := &Snapshot{Epoch: composite, View: v}
	// Publish only if it advances the cache: a slow merge racing a
	// newer reader must not evict the newer epoch's snapshot (the older
	// result is still returned to its caller — its cut is consistent).
	for {
		cached := s.snap.Load()
		if cached != nil && cached.Epoch >= composite {
			return snap
		}
		if s.snap.CompareAndSwap(cached, snap) {
			return snap
		}
	}
}

// mergedCountsLocked builds the union-column count aggregate: the
// sorted union of the shards' active property names and a CountTracker
// holding the summed N_p, |S| and 1-entry totals
// (rules.CountTracker.Merge per shard). Caller holds all shard locks.
func (s *Sharded) mergedCountsLocked() (*rules.CountTracker, []string, map[string]int) {
	nameSet := map[string]struct{}{}
	for _, d := range s.shards {
		counts := d.tracker.Counts()
		for i, p := range d.props {
			if counts[i] > 0 {
				nameSet[p] = struct{}{}
			}
		}
	}
	names := make([]string, 0, len(nameSet))
	for n := range nameSet {
		names = append(names, n)
	}
	sort.Strings(names)
	nameIdx := make(map[string]int, len(names))
	for i, n := range names {
		nameIdx[n] = i
	}
	merged := rules.NewCountTracker(len(names))
	for _, d := range s.shards {
		merged.Merge(d.tracker, s.colMapLocked(d, nameIdx))
	}
	return merged, names, nameIdx
}

// colMapLocked maps d's columns into the merged column space (-1 for
// retired columns, which carry no counts).
func (s *Sharded) colMapLocked(d *Dataset, nameIdx map[string]int) []int {
	counts := d.tracker.Counts()
	colMap := make([]int, len(d.props))
	for i, p := range d.props {
		if counts[i] > 0 {
			colMap[i] = nameIdx[p]
		} else {
			colMap[i] = -1
		}
	}
	return colMap
}

// Sigma evaluates a counts-based measure (σCov, σSim) against the
// merged live counts — O(shards·|P|) to union the column space, no
// snapshot build.
func (s *Sharded) Sigma(fn rules.CountsFunc) rules.Ratio {
	if len(s.shards) == 1 {
		return s.shards[0].Sigma(fn)
	}
	s.rlockAll()
	defer s.runlockAll()
	merged, _, _ := s.mergedCountsLocked()
	return merged.Eval(fn)
}

// SigmaCov returns σCov of the merged live dataset.
func (s *Sharded) SigmaCov() rules.Ratio { return s.Sigma(rules.CovFunc().(rules.CountsFunc)) }

// SigmaSim returns σSim of the merged live dataset.
func (s *Sharded) SigmaSim() rules.Ratio { return s.Sigma(rules.SimFunc().(rules.CountsFunc)) }

// shardedPairs answers pair-count reads by summing the demanded entry
// across the shards' live PairTrackers — O(shards) per Both, so a
// fixed-demand measure (σDep/σSymDep/σDepDisj, pinned compiled rules)
// reads in O(shards) total without materializing the merged |P|²
// matrix. Valid only under all shard locks.
type shardedPairs struct {
	s       *Sharded
	nameIdx map[string]int
	// cols[i][mergedCol] is shard i's column for mergedCol, or -1 when
	// the property is absent (or retired) there.
	cols [][]int
}

func (m *shardedPairs) Column(p string) (int, bool) {
	i, ok := m.nameIdx[p]
	return i, ok
}

func (m *shardedPairs) Both(i, j int) int64 {
	var tot int64
	for si, d := range m.s.shards {
		ci, cj := m.cols[si][i], m.cols[si][j]
		if ci >= 0 && cj >= 0 {
			tot += d.pairs.Both(ci, cj)
		}
	}
	return tot
}

// trackerPairs adapts a materialized merged PairTracker to the
// name-keyed read interface.
type trackerPairs struct {
	t       *rules.PairTracker
	nameIdx map[string]int
}

func (m trackerPairs) Column(p string) (int, bool) {
	i, ok := m.nameIdx[p]
	return i, ok
}

func (m trackerPairs) Both(i, j int) int64 { return m.t.Both(i, j) }

// SigmaPairs evaluates a pair-counts measure against the merged live
// aggregates, no snapshot build. Measures declaring fixed pair demands
// (rules.PairDemands — the dependency measures and pinned compiled
// rules) read each demanded entry as an O(shards) sum; a measure that
// may read arbitrary pairs gets a merged PairTracker materialized via
// rules.PairTracker.Merge (O(shards·|P|²), amortized by the read
// pattern that forced it). Returns ok = false when pair tracking is
// disabled (Options.DisablePairCounts); callers then evaluate against
// a Snapshot instead.
func (s *Sharded) SigmaPairs(fn rules.PairCountsFunc) (rules.Ratio, bool) {
	if len(s.shards) == 1 {
		return s.shards[0].SigmaPairs(fn)
	}
	s.rlockAll()
	defer s.runlockAll()
	for _, d := range s.shards {
		if d.pairs == nil {
			return rules.Ratio{}, false
		}
	}
	merged, names, nameIdx := s.mergedCountsLocked()
	if pd, ok := fn.(rules.PairDemands); ok && pd.NeededPairs() != nil {
		mp := &shardedPairs{s: s, nameIdx: nameIdx, cols: make([][]int, len(s.shards))}
		for i, d := range s.shards {
			shardCols := make([]int, len(names))
			for j := range shardCols {
				shardCols[j] = -1
			}
			for ci, p := range d.props {
				if mi, ok := nameIdx[p]; ok {
					shardCols[mi] = ci
				}
			}
			mp.cols[i] = shardCols
		}
		return fn.EvalPairCounts(merged.Counts(), mp, merged.Subjects()), true
	}
	pt := rules.NewPairTracker(len(names))
	for _, d := range s.shards {
		pt.Merge(d.pairs, s.colMapLocked(d, nameIdx))
	}
	return fn.EvalPairCounts(merged.Counts(), trackerPairs{t: pt, nameIdx: nameIdx}, merged.Subjects()), true
}

// PairsTracked reports whether the live pair-count tracker is on (the
// shards share Options, so it is uniform across them).
func (s *Sharded) PairsTracked() bool { return s.shards[0].PairsTracked() }

// Stats returns merged statistics under an all-shard read cut:
// triples, subjects, added and removed sum (subject-disjointness makes
// the subject sum exact), properties count the union of active
// columns, signatures count the distinct merged property-name sets,
// and the epoch is the composite epoch.
func (s *Sharded) Stats() Stats {
	if len(s.shards) == 1 {
		return s.shards[0].Stats()
	}
	s.rlockAll()
	defer s.runlockAll()
	return s.mergedStatsLocked()
}

// mergedStatsLocked computes the merged Stats. Caller holds all shard
// locks.
func (s *Sharded) mergedStatsLocked() Stats {
	var st Stats
	props := map[string]struct{}{}
	sigKeys := map[string]struct{}{}
	var names []string
	for _, d := range s.shards {
		st.Epoch += d.epoch
		st.Triples += d.g.Len()
		st.Subjects += d.g.SubjectCount()
		st.Added += d.added
		st.Removed += d.removed
		counts := d.tracker.Counts()
		for i, p := range d.props {
			if counts[i] > 0 {
				props[p] = struct{}{}
			}
		}
		// Signature identity across shards is the set of property names
		// (column indices are shard-local).
		for _, sig := range d.sigs {
			names = names[:0]
			for _, c := range sig.cols {
				names = append(names, d.props[c])
			}
			sort.Strings(names)
			sigKeys[strings.Join(names, "\x00")] = struct{}{}
		}
	}
	st.Properties = len(props)
	st.Signatures = len(sigKeys)
	st.Terms = s.dict.Len()
	return st
}

// ShardStats returns per-shard statistics under one all-shard read
// cut, in shard index order. Terms is zeroed in the breakdown: the
// dictionary is shared, so per-shard term counts neither exist nor
// sum — read the merged Stats for the global count.
func (s *Sharded) ShardStats() []Stats {
	s.rlockAll()
	defer s.runlockAll()
	return s.shardStatsLocked()
}

// shardStatsLocked computes the per-shard breakdown. Caller holds all
// shard locks.
func (s *Sharded) shardStatsLocked() []Stats {
	out := make([]Stats, len(s.shards))
	for i, d := range s.shards {
		out[i] = d.statsLocked()
		out[i].Terms = 0
	}
	return out
}

// StatsWithShards returns the merged statistics and the per-shard
// breakdown under one all-shard read cut, so the breakdown always sums
// to the merged totals even while writers are landing.
func (s *Sharded) StatsWithShards() (Stats, []Stats) {
	s.rlockAll()
	defer s.runlockAll()
	if len(s.shards) == 1 {
		st := s.shards[0].statsLocked()
		return st, s.shardStatsLocked()
	}
	return s.mergedStatsLocked(), s.shardStatsLocked()
}

// ViewStorage returns the summed per-shard storage breakdown (each
// shard's snapshot is cached per shard epoch). The per-shard sum
// slightly overcounts the merged view — signatures split across shards
// are counted once per shard — which is the honest accounting: those
// containers all exist while serving.
func (s *Sharded) ViewStorage() ViewStorage {
	if len(s.shards) == 1 {
		return s.shards[0].ViewStorage()
	}
	var vs ViewStorage
	for _, d := range s.shards {
		vs.merge(d.ViewStorage())
	}
	return vs
}

// Contains reports whether the triple is currently in the dataset (a
// single-shard probe — the triple can only live on its subject's
// shard).
func (s *Sharded) Contains(t rdf.Triple) bool {
	id, ok := s.dict.Lookup(t.Subject)
	if !ok {
		return false
	}
	return s.shards[s.shardOf(id)].Contains(t)
}
