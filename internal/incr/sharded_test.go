package incr

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/matrix"
	"repro/internal/rdf"
	"repro/internal/refine"
	"repro/internal/rules"
)

// shardCounts is the invariance axis: the same stream must produce
// identical merged state at every point of it.
var shardCounts = []int{1, 2, 4, 8}

// streamPool builds the mixed triple pool the invariance suites draw
// from: generator triples (structured signatures, rdf:type churn) plus
// synthetic triples over tight alphabets (property retirement/revival,
// multi-valued predicates, subjects colliding across shards).
func streamPool(seed int64) []rdf.Triple {
	rng := rand.New(rand.NewSource(seed))
	pool := datagen.MixedDrugSultans(datagen.MixedOptions{
		DrugCompanies: 10, Sultans: 8, SparseSultans: 3, Seed: seed,
	}).Triples()
	for i := 0; i < 300; i++ {
		s := fmt.Sprintf("http://syn/s%d", rng.Intn(24))
		p := fmt.Sprintf("http://syn/p%d", rng.Intn(6))
		o := fmt.Sprintf("http://syn/o%d", rng.Intn(4))
		tr := rdf.Triple{Subject: s, Predicate: p, Object: rdf.NewURI(o)}
		if rng.Intn(5) == 0 {
			tr = rdf.Triple{Subject: s, Predicate: rdf.TypeURI, Object: rdf.NewURI(o)}
		}
		pool = append(pool, tr)
	}
	return pool
}

// assertEnginesAgree checks that every engine's merged state is
// bit-identical to the n=1 reference AND to a from-scratch rebuild:
// snapshot views (signature multisets, subject lists), σCov/σSim, the
// dependency measures over live pair counts, and the merged Stats.
func assertEnginesAgree(t *testing.T, label string, engines []Engine, alive []rdf.Triple) {
	t.Helper()
	g := rdf.NewGraph()
	for _, tr := range alive {
		g.Add(tr)
	}
	want := matrix.FromGraph(g, matrix.Options{KeepSubjects: true})
	ref := engines[0].Stats()
	for i, e := range engines {
		lbl := fmt.Sprintf("%s shards=%d", label, shardCounts[i])
		snap := e.Snapshot()
		assertViewsEqual(t, lbl, snap.View, want)
		assertRatioEqual(t, lbl+" σCov", e.SigmaCov(), rules.Coverage(want))
		assertRatioEqual(t, lbl+" σSim", e.SigmaSim(), rules.Similarity(want))
		props := want.Properties()
		pairs := [][2]string{{"http://never/seen", "http://never/seen2"}}
		if len(props) > 1 {
			p1, p2 := props[0], props[len(props)-1]
			pairs = append(pairs, [2]string{p1, p2}, [2]string{p2, p1}, [2]string{p1, p1}, [2]string{p1, "http://never/seen"})
		}
		for _, pp := range pairs {
			for _, fn := range []rules.Func{
				rules.DepFunc(pp[0], pp[1]),
				rules.SymDepFunc(pp[0], pp[1]),
				rules.DepDisjFunc(pp[0], pp[1]),
			} {
				got, live := e.SigmaPairs(fn.(rules.PairCountsFunc))
				if !live {
					t.Fatalf("%s: pair tracking unexpectedly off", lbl)
				}
				wantR, err := fn.Eval(want)
				if err != nil {
					t.Fatal(err)
				}
				assertRatioEqual(t, fmt.Sprintf("%s live %s", lbl, fn.Name()), got, wantR)
			}
		}
		st := e.Stats()
		if st.Triples != ref.Triples || st.Subjects != ref.Subjects ||
			st.Properties != ref.Properties || st.Signatures != ref.Signatures ||
			st.Added != ref.Added || st.Removed != ref.Removed {
			t.Fatalf("%s: stats %+v, want (mod epoch/terms) %+v", lbl, st, ref)
		}
		if st.Triples != g.Len() || st.Subjects != g.SubjectCount() {
			t.Fatalf("%s: stats %+v disagree with rebuild (%d triples, %d subjects)",
				lbl, st, g.Len(), g.SubjectCount())
		}
	}
}

// TestShardCountInvariance applies one randomized add/remove stream to
// engines at shards ∈ {1, 2, 4, 8} and asserts, at checkpoints, that
// the merged σ ratios (counts and pair measures), signature multisets
// and subject lists are identical across shard counts and identical to
// a batch rebuild — the exactness pin for subject-disjoint sharding.
// At the end, the same refinement search runs on every engine's merged
// snapshot and must produce identical outcomes.
func TestShardCountInvariance(t *testing.T) {
	for _, seed := range []int64{2, 11} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			pool := streamPool(seed)
			engines := make([]Engine, len(shardCounts))
			for i, n := range shardCounts {
				if n == 1 {
					engines[i] = NewDataset(Options{KeepSubjects: true})
				} else {
					engines[i] = NewSharded(n, Options{KeepSubjects: true})
				}
			}
			rng := rand.New(rand.NewSource(seed * 31))
			var alive []rdf.Triple
			aliveIdx := map[rdf.Triple]int{}
			for batch := 0; batch < 40; batch++ {
				var add, remove []rdf.Triple
				n := 1 + rng.Intn(25)
				for i := 0; i < n; i++ {
					if len(alive) > 0 && rng.Intn(3) == 0 {
						remove = append(remove, alive[rng.Intn(len(alive))])
					} else {
						add = append(add, pool[rng.Intn(len(pool))])
					}
				}
				var wantAdd, wantRem = -1, -1
				for _, e := range engines {
					a, r := e.Apply(add, remove)
					if wantAdd == -1 {
						wantAdd, wantRem = a, r
					} else if a != wantAdd || r != wantRem {
						t.Fatalf("batch %d: applied (%d,%d), want (%d,%d)", batch, a, r, wantAdd, wantRem)
					}
				}
				for _, tr := range add {
					if _, ok := aliveIdx[tr]; !ok {
						aliveIdx[tr] = len(alive)
						alive = append(alive, tr)
					}
				}
				for _, tr := range remove {
					if i, ok := aliveIdx[tr]; ok {
						last := alive[len(alive)-1]
						alive[i] = last
						aliveIdx[last] = i
						alive = alive[:len(alive)-1]
						delete(aliveIdx, tr)
					}
				}
				if batch%10 == 9 {
					assertEnginesAgree(t, fmt.Sprintf("batch %d", batch), engines, alive)
				}
			}

			// Identical refinement outcomes on the merged snapshots: same
			// lowest k, same assignment, same per-sort σ values.
			// Quick fixed budgets: identical inputs give identical searches,
			// which is all the invariance pin needs.
			opts := refine.SearchOptions{
				Engine: refine.EngineHeuristic, Workers: 1,
				Heuristic: refine.HeuristicOptions{Seed: 7, Restarts: 2, MaxIters: 25},
			}
			var ref *refine.Outcome
			for i, e := range engines {
				out, err := refine.LowestK(e.Snapshot().View, nil, rules.CovFunc(), 9, 10, opts)
				if err != nil {
					t.Fatal(err)
				}
				if ref == nil {
					ref = out
					continue
				}
				if out.K != ref.K {
					t.Fatalf("shards=%d: k = %d, want %d", shardCounts[i], out.K, ref.K)
				}
				if (out.Refinement == nil) != (ref.Refinement == nil) {
					t.Fatalf("shards=%d: refinement presence differs", shardCounts[i])
				}
				if out.Refinement != nil {
					if out.Refinement.MinSigma != ref.Refinement.MinSigma {
						t.Fatalf("shards=%d: minSigma = %v, want %v",
							shardCounts[i], out.Refinement.MinSigma, ref.Refinement.MinSigma)
					}
					if fmt.Sprint(out.Refinement.Assignment) != fmt.Sprint(ref.Refinement.Assignment) {
						t.Fatalf("shards=%d: assignment %v, want %v",
							shardCounts[i], out.Refinement.Assignment, ref.Refinement.Assignment)
					}
				}
			}

			// Drain every engine to empty through the same remove stream.
			for _, e := range engines {
				e.Apply(nil, alive)
			}
			assertEnginesAgree(t, "drained", engines, nil)
		})
	}
}

// TestShardStreamInvariance streams the same N-Triples document through
// every shard count's worker pool (the rdfserved raw-body path) and
// checks merged-state identity, including against AddStream on string
// triples.
func TestShardStreamInvariance(t *testing.T) {
	g := datagen.MixedDrugSultans(datagen.MixedOptions{
		DrugCompanies: 15, Sultans: 10, SparseSultans: 5, Seed: 3,
	})
	var buf bytes.Buffer
	if err := rdf.WriteNTriples(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	alive := g.Triples()

	engines := make([]Engine, len(shardCounts))
	for i, n := range shardCounts {
		if n == 1 {
			engines[i] = NewDataset(Options{KeepSubjects: true})
		} else {
			engines[i] = NewSharded(n, Options{KeepSubjects: true})
		}
		// Small batches force multi-batch routing through the pool.
		added, err := engines[i].AddNTriples(bytes.NewReader(data), 64)
		if err != nil {
			t.Fatal(err)
		}
		if added != len(alive) {
			t.Fatalf("shards=%d: added %d, want %d", n, added, len(alive))
		}
	}
	assertEnginesAgree(t, "stream", engines, alive)

	// The string-triple stream path must land in the same state.
	s := NewSharded(4, Options{KeepSubjects: true})
	added, err := s.AddStream(50, func(emit func(rdf.Triple) error) error {
		for _, tr := range alive {
			if err := emit(tr); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil || added != len(alive) {
		t.Fatalf("AddStream: added %d, err %v", added, err)
	}
	assertViewsEqual(t, "addstream", s.Snapshot().View, engines[0].Snapshot().View)
}

// TestShardedConcurrentIngest is the -race acceptance check: parallel
// writers on overlapping subject spaces, raw-NT streams, and readers
// taking merged snapshots, σ and stats, all at once. The final state
// must equal a batch rebuild of the union triple set.
func TestShardedConcurrentIngest(t *testing.T) {
	s := NewSharded(4, Options{KeepSubjects: true})
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})

	seen := make(map[rdf.Triple]struct{})
	var seenMu sync.Mutex
	record := func(trs []rdf.Triple) {
		seenMu.Lock()
		for _, tr := range trs {
			seen[tr] = struct{}{}
		}
		seenMu.Unlock()
	}

	// Batch writers: overlapping subject alphabets so shard routing and
	// dedup both get exercised.
	for w := 0; w < 3; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < 80; i++ {
				var add []rdf.Triple
				for j := 0; j < 12; j++ {
					add = append(add, rdf.Triple{
						Subject:   fmt.Sprintf("http://c/s%d", rng.Intn(60)),
						Predicate: fmt.Sprintf("http://c/p%d", rng.Intn(7)),
						Object:    rdf.NewURI(fmt.Sprintf("http://c/o%d", rng.Intn(5))),
					})
				}
				record(add)
				s.Apply(add, nil)
			}
		}(w)
	}
	// A raw-NT stream writer through the worker pool.
	writers.Add(1)
	go func() {
		defer writers.Done()
		var sb strings.Builder
		var trs []rdf.Triple
		for i := 0; i < 500; i++ {
			tr := rdf.Triple{
				Subject:   fmt.Sprintf("http://nt/s%d", i%80),
				Predicate: fmt.Sprintf("http://nt/p%d", i%5),
				Object:    rdf.NewURI(fmt.Sprintf("http://nt/o%d", i%3)),
			}
			trs = append(trs, tr)
			fmt.Fprintf(&sb, "<%s> <%s> <%s> .\n", tr.Subject, tr.Predicate, tr.Object.Value)
		}
		record(trs)
		if _, err := s.AddNTriples(strings.NewReader(sb.String()), 32); err != nil {
			t.Error(err)
		}
	}()
	// Readers against the live merged state.
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := s.Snapshot()
				if snap.View.NumSubjects() < 0 {
					t.Error("negative subjects")
				}
				_ = s.SigmaCov()
				_ = s.SigmaSim()
				if _, live := s.SigmaPairs(rules.DepFunc("http://c/p0", "http://c/p1").(rules.PairCountsFunc)); !live {
					t.Error("pair tracking off")
				}
				_ = s.Stats()
				_ = s.ShardStats()
				_ = s.Epoch()
				// Pause between polls: spinning on all-shard read cuts
				// convoys the writers and only re-reads the same epoch.
				time.Sleep(200 * time.Microsecond)
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	alive := make([]rdf.Triple, 0, len(seen))
	for tr := range seen {
		alive = append(alive, tr)
	}
	g := rdf.NewGraph()
	for _, tr := range alive {
		g.Add(tr)
	}
	want := matrix.FromGraph(g, matrix.Options{KeepSubjects: true})
	assertViewsEqual(t, "post-concurrency", s.Snapshot().View, want)
	assertRatioEqual(t, "post-concurrency σCov", s.SigmaCov(), rules.Coverage(want))
	st := s.Stats()
	if st.Triples != g.Len() || st.Subjects != g.SubjectCount() {
		t.Fatalf("stats %+v, want %d triples / %d subjects", st, g.Len(), g.SubjectCount())
	}
	sum := 0
	for _, ss := range s.ShardStats() {
		sum += ss.Triples
	}
	if sum != st.Triples {
		t.Fatalf("shard triples sum %d != merged %d", sum, st.Triples)
	}
}

// TestShardedSingleDelegates pins that a 1-shard engine is the plain
// Dataset code path: its snapshot is the inner dataset's snapshot
// object, not a merged copy.
func TestShardedSingleDelegates(t *testing.T) {
	s := NewSharded(1, Options{})
	s.Apply([]rdf.Triple{{Subject: "s", Predicate: "p", Object: rdf.NewURI("o")}}, nil)
	if got, want := s.Snapshot(), s.shards[0].Snapshot(); got != want {
		t.Fatal("single-shard snapshot is not the inner dataset's snapshot")
	}
	if s.Epoch() != s.shards[0].Epoch() {
		t.Fatal("single-shard epoch diverges")
	}
}

// TestShardedDisablePairCounts routes SigmaPairs callers to the
// snapshot fallback, as on the single dataset.
func TestShardedDisablePairCounts(t *testing.T) {
	s := NewSharded(3, Options{DisablePairCounts: true})
	s.Apply([]rdf.Triple{
		{Subject: "http://s1", Predicate: "http://p1", Object: rdf.NewURI("http://o")},
		{Subject: "http://s2", Predicate: "http://p2", Object: rdf.NewURI("http://o")},
	}, nil)
	if s.PairsTracked() {
		t.Fatal("PairsTracked should be false")
	}
	fn := rules.DepFunc("http://p1", "http://p2").(rules.PairCountsFunc)
	if _, live := s.SigmaPairs(fn); live {
		t.Fatal("SigmaPairs should report not-live when disabled")
	}
	if got := s.Snapshot().View.NumSubjects(); got != 2 {
		t.Fatalf("snapshot subjects = %d, want 2", got)
	}
}
