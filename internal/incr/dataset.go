// Package incr is the incremental structuredness engine: it maintains
// the property-structure view M(D), the signature sets Λ(D) and the
// closed-form structuredness counts of a *mutable* RDF dataset as
// triples arrive and retract, instead of rebuilding them from scratch.
//
// The paper's pipeline is strictly batch — parse a dump, build the
// signature view, refine once. This package turns that pipeline into a
// live system: Apply ingests add/remove batches, migrating each touched
// subject between signature sets (creating and retiring signatures and
// property columns as needed) and updating the per-property subject
// counts N_p behind σCov and σSim in O(1) per property transition
// (rules.CountTracker). Readers obtain immutable matrix.View snapshots
// via copy-on-write epochs: a snapshot is built lazily from the
// signature-level state — O(|Λ|·|P|), independent of the subject count
// — cached per epoch, and never mutated afterwards, so the existing
// refinement engine runs unchanged against a consistent view while
// ingestion continues.
//
// All of the per-batch work runs on interned term IDs (internal/term):
// signature membership, subject migration and the σ count deltas key by
// TermID and column index, so a steady-state Apply hashes no strings at
// all — the only string work ever done is interning genuinely new
// terms at the parse edge and materializing names into snapshots.
package incr

import (
	"context"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/bitset"
	"repro/internal/matrix"
	"repro/internal/rdf"
	"repro/internal/rules"
	"repro/internal/term"
)

// Options configures a Dataset. The zero value matches
// matrix.Options{}: rdf:type is excluded from the property columns.
type Options struct {
	// IgnoreProperties are predicate URIs excluded from the view's
	// columns (rdf:type always is).
	IgnoreProperties []string
	// KeepSubjects retains subject URIs per signature in snapshots
	// (needed to materialize partitions back into RDF graphs).
	KeepSubjects bool
	// DisablePairCounts turns off the live pairwise co-occurrence
	// tracker. By default the dataset maintains C[p1][p2] alongside N_p
	// — O(per-subject property count) extra work per column transition
	// and O(|P|²) memory — so σDep/σSymDep and compiled two-variable
	// rules read in O(1) via SigmaPairs. Disable it for datasets with
	// very many properties; pair-counts reads then fall back to
	// snapshot evaluation.
	DisablePairCounts bool
}

// sigState is one live signature set: the set of property columns and
// the subjects currently exhibiting it. Columns are indices into the
// dataset's append-only column space (which may contain retired,
// zero-count columns; a live sigState never references those).
type sigState struct {
	cols     []int // sorted ascending
	key      string
	subjects map[term.ID]struct{}
}

// Dataset is a mutable RDF dataset with incrementally-maintained
// signature sets and structuredness counts. All methods are safe for
// concurrent use: Apply serializes writers, readers work off immutable
// per-epoch snapshots or O(|P|) count reads.
type Dataset struct {
	mu   sync.RWMutex
	opts Options

	// ignore holds the interned IDs of excluded predicates. The IDs are
	// fixed at construction (the dictionary is append-only), so the
	// per-triple exclusion check is one integer map probe.
	ignore map[term.ID]bool
	g      *rdf.Graph

	// Append-only column space. Columns whose subject count drops to
	// zero are retired in place (snapshots skip them) and revived if the
	// property reappears.
	props     []string // column names, materialized once at creation
	propIndex map[term.ID]int

	tracker *rules.CountTracker
	// pairs delta-maintains the pairwise co-occurrence counts behind
	// the compiled two-variable evaluators (nil when disabled). It
	// lives in the same append-only column space as tracker.
	pairs *rules.PairTracker

	sigs    map[string]*sigState  // signature key -> state
	subjSig map[term.ID]*sigState // subject -> its signature set

	epoch   uint64
	snap    atomic.Pointer[Snapshot]
	added   uint64
	removed uint64

	// hook, when set, observes every effective batch under mu — the
	// durability layer's write-ahead-log tap (see SetBatchHook).
	hook BatchHook

	// met, when set, is the shard's ingest instrumentation tap,
	// updated once per effective batch (see RegisterMetrics).
	met *shardMetrics
}

// Snapshot is an immutable view of the dataset at one epoch.
type Snapshot struct {
	// Epoch identifies the dataset state; it increases with every
	// mutating batch.
	Epoch uint64
	// View is the signature-compressed property-structure view,
	// bit-identical to matrix.FromGraph on the same triple set.
	View *matrix.View
}

// NewDataset returns an empty incremental dataset with its own term
// dictionary.
func NewDataset(opts Options) *Dataset { return NewDatasetWithDict(term.NewDict(), opts) }

// NewDatasetWithDict returns an empty incremental dataset interning
// into dict. Sharing one dictionary across datasets — the sharded
// engine's layout — makes their subject and property IDs directly
// comparable, so triples routed between them never re-intern.
func NewDatasetWithDict(dict *term.Dict, opts Options) *Dataset {
	g := rdf.NewGraphWithDict(dict)
	ignore := map[term.ID]bool{dict.Intern(rdf.TypeURI): true}
	for _, p := range opts.IgnoreProperties {
		ignore[dict.Intern(p)] = true
	}
	d := &Dataset{
		opts:      opts,
		ignore:    ignore,
		g:         g,
		propIndex: make(map[term.ID]int),
		tracker:   rules.NewCountTracker(0),
		sigs:      make(map[string]*sigState),
		subjSig:   make(map[term.ID]*sigState),
	}
	if !opts.DisablePairCounts {
		d.pairs = rules.NewPairTracker(0)
	}
	return d
}

// FromGraph builds an incremental dataset preloaded with g's triples.
func FromGraph(g *rdf.Graph, opts Options) *Dataset {
	d := NewDataset(opts)
	d.Apply(g.Triples(), nil)
	return d
}

// Dict returns the dataset's term dictionary (shared with its graph).
// Interning is safe concurrently with Apply.
func (d *Dataset) Dict() *term.Dict { return d.g.Dict() }

// AddStream applies triples produced by a streaming reader (e.g.
// rdf.ReadNTriples, rdf.ReadTurtle) in bounded batches of batchSize, so
// arbitrarily large dumps ingest without materializing a triple list.
// read is called with the emit callback to feed. On a read error, the
// triples emitted before it remain applied and are reflected in added.
func (d *Dataset) AddStream(batchSize int, read func(emit func(rdf.Triple) error) error) (added int, err error) {
	if batchSize <= 0 {
		batchSize = 10000
	}
	batch := make([]rdf.Triple, 0, batchSize)
	flush := func() {
		a, _ := d.Apply(batch, nil)
		added += a
		batch = batch[:0]
	}
	err = read(func(t rdf.Triple) error {
		batch = append(batch, t)
		if len(batch) == cap(batch) {
			flush()
		}
		return nil
	})
	flush()
	return added, err
}

// AddStreamIDs is AddStream over interned triples: the reader interns
// terms (typically zero-copy off its input buffer) and the batches
// apply without ever touching a string.
func (d *Dataset) AddStreamIDs(batchSize int, read func(emit func(rdf.IDTriple) error) error) (added int, err error) {
	if batchSize <= 0 {
		batchSize = 10000
	}
	batch := make([]rdf.IDTriple, 0, batchSize)
	flush := func() {
		a, _ := d.ApplyIDs(batch, nil)
		added += a
		batch = batch[:0]
	}
	err = read(func(it rdf.IDTriple) error {
		batch = append(batch, it)
		if len(batch) == cap(batch) {
			flush()
		}
		return nil
	})
	flush()
	return added, err
}

// AddNTriples streams an N-Triples document into the dataset through
// the interning decoder — the zero-copy ingest path rdfserved uses for
// raw bodies. On a parse or read error, triples decoded before it
// remain applied and are reflected in added.
func (d *Dataset) AddNTriples(r io.Reader, batchSize int) (added int, err error) {
	return d.AddStreamIDs(batchSize, func(emit func(rdf.IDTriple) error) error {
		return rdf.ReadNTriplesIDs(r, d.Dict(), emit)
	})
}

// AddNTriplesCtx is AddNTriples bounded by ctx (see Engine).
func (d *Dataset) AddNTriplesCtx(ctx context.Context, r io.Reader, batchSize int) (added int, err error) {
	return d.AddStreamIDs(batchSize, func(emit func(rdf.IDTriple) error) error {
		return rdf.ReadNTriplesIDs(r, d.Dict(), ctxEmit(ctx, emit))
	})
}

// ctxEmitStride is how many decoded triples pass between context
// checks in AddNTriplesCtx — cheap enough to be noise, frequent enough
// that a deadline stops a multi-gigabyte stream within microseconds.
const ctxEmitStride = 512

// ctxEmit wraps a decoder emit callback with a periodic context check
// so streaming ingest honors request deadlines mid-body. The decoder
// propagates the emit error unwrapped, so errors.Is(err, ctx.Err())
// holds at the ingest surface.
func ctxEmit(ctx context.Context, emit func(rdf.IDTriple) error) func(rdf.IDTriple) error {
	n := 0
	return func(it rdf.IDTriple) error {
		n++
		if n%ctxEmitStride == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		return emit(it)
	}
}

// colsKey returns the canonical identity of a column set. Unlike
// bitset.Set.Key it is independent of the (growing) column capacity.
func colsKey(cols []int) string {
	var b strings.Builder
	for i, c := range cols {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(c))
	}
	return b.String()
}

// Apply ingests one batch: adds first, then removes, each deduplicated
// against the current triple set (re-adding a present triple or
// removing an absent one is a no-op). It returns the number of triples
// actually added and removed. The batch is atomic with respect to
// readers: no snapshot observes a half-applied batch.
func (d *Dataset) Apply(add, remove []rdf.Triple) (added, removed int) {
	// Intern/lookup outside the lock (the dictionary is independently
	// thread-safe), then run the shared ID batch path — so the string
	// and ID surfaces apply, version and log batches identically.
	addIDs := make([]rdf.IDTriple, 0, len(add))
	for _, t := range add {
		addIDs = append(addIDs, d.g.Intern(t))
	}
	var removeIDs []rdf.IDTriple
	for _, t := range remove {
		// Lookup, not Intern: removing a triple with never-seen terms is
		// a no-op and must not grow the dictionary.
		if it, ok := d.g.LookupTriple(t); ok {
			removeIDs = append(removeIDs, it)
		}
	}
	return d.ApplyIDs(addIDs, removeIDs)
}

// ApplyIDs is Apply over pre-interned triples — the string-free batch
// path fed by the interning decoders.
func (d *Dataset) ApplyIDs(add, remove []rdf.IDTriple) (added, removed int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, it := range add {
		if d.applyAdd(it) {
			added++
		}
	}
	for _, it := range remove {
		if d.applyRemove(it) {
			removed++
		}
	}
	d.finishBatch(added, removed)
	if (added > 0 || removed > 0) && d.hook != nil {
		d.hook(add, remove, d.epoch)
	}
	return added, removed
}

// finishBatch advances the epoch after a mutating batch and feeds the
// instrumentation tap. Caller holds mu.
func (d *Dataset) finishBatch(added, removed int) {
	if added == 0 && removed == 0 {
		return
	}
	d.epoch++
	d.added += uint64(added)
	d.removed += uint64(removed)
	if m := d.met; m != nil {
		m.added.Add(int64(added))
		m.removed.Add(int64(removed))
		m.batches.Inc()
		m.batchTriples.Observe(float64(added + removed))
		m.epoch.Set(int64(d.epoch))
		m.signatures.Set(int64(len(d.sigs)))
		m.subjects.Set(int64(d.g.SubjectCount()))
	}
}

// applyAdd inserts one triple and migrates its subject. Caller holds mu.
func (d *Dataset) applyAdd(it rdf.IDTriple) bool {
	s, p := it.S, it.P
	hadSubj := d.g.HasSubjectID(s)
	hadProp := hadSubj && d.g.HasPropertyID(s, p)
	if !d.g.AddID(it) {
		return false
	}
	if !hadSubj {
		d.tracker.AddSubjects(1)
	}
	gainedCol := -1
	if !hadProp && !d.ignore[p] {
		gainedCol = d.colFor(p)
		d.tracker.Gain(gainedCol)
	}
	if hadSubj && gainedCol < 0 {
		return true // no signature transition
	}
	var oldCols []int
	if hadSubj {
		oldCols = d.detach(s)
	}
	newCols := oldCols
	if gainedCol >= 0 {
		newCols = insertCol(oldCols, gainedCol)
		if d.pairs != nil {
			d.pairs.AddCol(oldCols, gainedCol)
		}
	}
	d.attach(s, newCols)
	return true
}

// applyRemove deletes one triple and migrates its subject. Caller
// holds mu.
func (d *Dataset) applyRemove(it rdf.IDTriple) bool {
	s, p := it.S, it.P
	if !d.g.RemoveID(it) {
		return false
	}
	lostCol := -1
	if !d.ignore[p] && !d.g.HasPropertyID(s, p) {
		lostCol = d.propIndex[p] // p was a column: the triple was present
		d.tracker.Lose(lostCol)
	}
	if !d.g.HasSubjectID(s) {
		d.tracker.AddSubjects(-1)
		old := d.detach(s)
		// A disappearing subject's last column (if any) is lostCol; the
		// pair tracker sees the same transition as a migration to the
		// empty column set.
		if lostCol >= 0 && d.pairs != nil {
			d.pairs.RemoveCol(removeCol(old, lostCol), lostCol)
		}
		delete(d.subjSig, s)
		return true
	}
	if lostCol < 0 {
		return true
	}
	oldCols := d.detach(s)
	newCols := removeCol(oldCols, lostCol)
	if d.pairs != nil {
		d.pairs.RemoveCol(newCols, lostCol)
	}
	d.attach(s, newCols)
	return true
}

// colFor returns p's column, creating it on first sight (or reviving a
// retired column of the same name).
func (d *Dataset) colFor(p term.ID) int {
	if i, ok := d.propIndex[p]; ok {
		return i
	}
	i := len(d.props)
	d.props = append(d.props, d.g.Dict().String(p))
	d.propIndex[p] = i
	d.tracker.Grow(len(d.props))
	if d.pairs != nil {
		d.pairs.Grow(len(d.props))
	}
	return i
}

// detach removes s from its signature set (retiring the set when it
// empties) and returns the set's columns. Returns nil for an unknown
// subject.
func (d *Dataset) detach(s term.ID) []int {
	st := d.subjSig[s]
	if st == nil {
		return nil
	}
	delete(st.subjects, s)
	if len(st.subjects) == 0 {
		delete(d.sigs, st.key)
	}
	return st.cols
}

// attach places s into the signature set for cols, creating it if new.
func (d *Dataset) attach(s term.ID, cols []int) {
	key := colsKey(cols)
	st := d.sigs[key]
	if st == nil {
		st = &sigState{cols: cols, key: key, subjects: make(map[term.ID]struct{})}
		d.sigs[key] = st
	}
	st.subjects[s] = struct{}{}
	d.subjSig[s] = st
}

// insertCol returns cols with c inserted in ascending order, never
// aliasing the input (signature states share their col slices).
func insertCol(cols []int, c int) []int {
	i := sort.SearchInts(cols, c)
	out := make([]int, 0, len(cols)+1)
	out = append(out, cols[:i]...)
	out = append(out, c)
	return append(out, cols[i:]...)
}

// removeCol returns cols without c, never aliasing the input.
func removeCol(cols []int, c int) []int {
	out := make([]int, 0, len(cols)-1)
	for _, x := range cols {
		if x != c {
			out = append(out, x)
		}
	}
	return out
}

// Snapshot returns the immutable view of the current epoch, building it
// on first request after a mutation (copy-on-write: the returned view
// is never touched by later batches). The construction works entirely
// off the signature-level state — O(|Λ(D)|·|P(D)|) plus subject-list
// copies when KeepSubjects is set — and is bit-identical to
// matrix.FromGraph on the same triples: retired columns are dropped and
// the rest are ordered by property name.
func (d *Dataset) Snapshot() *Snapshot {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.snapshotLocked()
}

// snapshotLocked returns the per-epoch cached snapshot, building it if
// stale. Caller holds at least an RLock (the snap pointer is atomic, so
// concurrent readers may race the store — they store identical
// content).
func (d *Dataset) snapshotLocked() *Snapshot {
	if s := d.snap.Load(); s != nil && s.Epoch == d.epoch {
		return s
	}
	s := &Snapshot{Epoch: d.epoch, View: d.buildView()}
	d.snap.Store(s)
	return s
}

// buildView materializes the current signature state. Caller holds at
// least an RLock.
func (d *Dataset) buildView() *matrix.View {
	counts := d.tracker.Counts()
	active := make([]int, 0, len(d.props))
	for i := range d.props {
		if counts[i] > 0 {
			active = append(active, i)
		}
	}
	names := make([]string, len(active))
	for j, i := range active {
		names[j] = d.props[i]
	}
	sort.Strings(names)
	remap := make([]int, len(d.props))
	for i := range remap {
		remap[i] = -1
	}
	nameIdx := make(map[string]int, len(names))
	for j, n := range names {
		nameIdx[n] = j
	}
	for _, i := range active {
		remap[i] = nameIdx[d.props[i]]
	}

	dict := d.g.Dict()
	sigs := make([]matrix.Signature, 0, len(d.sigs))
	var idxBuf []int
	for _, st := range d.sigs {
		// Remap the column list into name order and build the container
		// directly from the sorted indices — no |P|-wide scratch per
		// signature, and the adaptive representation kicks in on wide
		// schemas. st.cols is sorted in the append-only column space,
		// but name order permutes it, so re-sort after remapping.
		idxBuf = idxBuf[:0]
		for _, c := range st.cols {
			idxBuf = append(idxBuf, remap[c])
		}
		sort.Ints(idxBuf)
		sg := matrix.Signature{Bits: bitset.FromSortedIndices(len(names), idxBuf), Count: len(st.subjects)}
		if d.opts.KeepSubjects {
			subs := make([]string, 0, len(st.subjects))
			for s := range st.subjects {
				subs = append(subs, dict.String(s))
			}
			sort.Strings(subs)
			sg.Subjects = subs
		}
		sigs = append(sigs, sg)
	}
	v, err := matrix.NewDistinct(names, sigs)
	if err != nil {
		// Unreachable: the signature invariants guarantee distinct,
		// well-formed patterns. Fail loudly rather than serve a bad view.
		panic("incr: snapshot construction: " + err.Error())
	}
	return v
}

// Sigma evaluates a counts-based measure (σCov, σSim) against the live
// counts in O(|P|), no snapshot needed.
func (d *Dataset) Sigma(fn rules.CountsFunc) rules.Ratio {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.tracker.Eval(fn)
}

// livePairCounts adapts the dataset's live pair tracker to the
// rules.PairCounts read interface. Valid only under d.mu; names
// resolve through the dictionary with Lookup (never growing it), so a
// never-seen property is simply absent and the kernel goes vacuous.
// Retired columns resolve but carry zero counts, which the kernels'
// N_p checks treat identically to absence — matching snapshot
// evaluation, where retired columns are dropped from the view.
type livePairCounts struct{ d *Dataset }

func (lp livePairCounts) Column(name string) (int, bool) {
	id, ok := lp.d.g.Dict().Lookup(name)
	if !ok {
		return 0, false
	}
	i, ok := lp.d.propIndex[id]
	return i, ok
}

func (lp livePairCounts) Both(i, j int) int64 { return lp.d.pairs.Both(i, j) }

// SigmaPairs evaluates a pair-counts measure (σDep, σSymDep, σDepDisj,
// compiled two-variable rules) against the live aggregates — O(1) per
// read for measures with fixed pair demands, no snapshot build.
// Returns ok = false when pair tracking is disabled
// (Options.DisablePairCounts); callers then evaluate against a
// Snapshot instead.
func (d *Dataset) SigmaPairs(fn rules.PairCountsFunc) (rules.Ratio, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.pairs == nil {
		return rules.Ratio{}, false
	}
	return fn.EvalPairCounts(d.tracker.Counts(), livePairCounts{d}, d.tracker.Subjects()), true
}

// PairsTracked reports whether the live pair-count tracker is on.
func (d *Dataset) PairsTracked() bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.pairs != nil
}

// SigmaCov returns σCov of the live dataset.
func (d *Dataset) SigmaCov() rules.Ratio { return d.Sigma(rules.CovFunc().(rules.CountsFunc)) }

// SigmaSim returns σSim of the live dataset.
func (d *Dataset) SigmaSim() rules.Ratio { return d.Sigma(rules.SimFunc().(rules.CountsFunc)) }

// Stats summarizes the live dataset.
type Stats struct {
	Epoch      uint64 `json:"epoch"`
	Triples    int    `json:"triples"`
	Subjects   int    `json:"subjects"`
	Properties int    `json:"properties"` // active (non-retired) columns
	Signatures int    `json:"signatures"`
	Terms      int    `json:"terms"`   // distinct interned terms
	Added      uint64 `json:"added"`   // triples added over the dataset's lifetime
	Removed    uint64 `json:"removed"` // triples removed over the dataset's lifetime
}

// Stats returns current dataset statistics in O(|P|).
func (d *Dataset) Stats() Stats {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.statsLocked()
}

// statsLocked computes Stats. Caller holds at least an RLock.
func (d *Dataset) statsLocked() Stats {
	activeProps := 0
	for _, c := range d.tracker.Counts() {
		if c > 0 {
			activeProps++
		}
	}
	return Stats{
		Epoch:      d.epoch,
		Triples:    d.g.Len(),
		Subjects:   d.g.SubjectCount(),
		Properties: activeProps,
		Signatures: len(d.sigs),
		Terms:      d.g.Dict().Len(),
		Added:      d.added,
		Removed:    d.removed,
	}
}

// ViewStorage breaks down the signature-storage footprint of the
// engine's current snapshot plus its live pair aggregates — the
// serving tier's /stats and rdf_view_bytes surface.
type ViewStorage struct {
	// DenseSigs and SparseSigs count the snapshot's signatures by
	// container representation.
	DenseSigs  int `json:"dense_sigs"`
	SparseSigs int `json:"sparse_sigs"`
	// SigBytes estimates the snapshot's signature-container footprint.
	SigBytes int64 `json:"sig_bytes"`
	// ViewBytes estimates the whole snapshot view (signatures, property
	// table, any built pair aggregate).
	ViewBytes int64 `json:"view_bytes"`
	// TrackerBytes estimates the live pair trackers' footprint (0 when
	// pair tracking is disabled).
	TrackerBytes int64 `json:"tracker_bytes"`
}

// merge adds o's breakdown into v (per-shard sums).
func (v *ViewStorage) merge(o ViewStorage) {
	v.DenseSigs += o.DenseSigs
	v.SparseSigs += o.SparseSigs
	v.SigBytes += o.SigBytes
	v.ViewBytes += o.ViewBytes
	v.TrackerBytes += o.TrackerBytes
}

// ViewStorage returns the dataset's storage breakdown. The snapshot is
// the per-epoch cached one (built if stale), so repeated reads between
// mutations are cheap.
func (d *Dataset) ViewStorage() ViewStorage {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.viewStorageLocked()
}

// viewStorageLocked computes the breakdown. Caller holds at least an
// RLock.
func (d *Dataset) viewStorageLocked() ViewStorage {
	snap := d.snapshotLocked()
	st := snap.View.StorageStats()
	vs := ViewStorage{
		DenseSigs:  st.DenseSigs,
		SparseSigs: st.SparseSigs,
		SigBytes:   st.SigBytes,
		ViewBytes:  snap.View.MemSize(),
	}
	if d.pairs != nil {
		vs.TrackerBytes = d.pairs.MemSize()
	}
	return vs
}

// Contains reports whether the triple is currently in the dataset.
func (d *Dataset) Contains(t rdf.Triple) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.g.Contains(t)
}

// Epoch returns the current epoch.
func (d *Dataset) Epoch() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.epoch
}
