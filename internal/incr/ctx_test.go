package incr

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// ntDoc builds an N-Triples document of n distinct triples.
func ntDoc(n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "<http://ctx/s%d> <http://ctx/p%d> <http://ctx/o> .\n", i, i%5)
	}
	return sb.String()
}

// TestAddNTriplesCtx: a live context behaves exactly like AddNTriples;
// an already-expired context stops the stream early with ctx.Err()
// while keeping what was applied.
func TestAddNTriplesCtx(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			mk := func() Engine {
				if shards == 1 {
					return NewDataset(Options{})
				}
				return NewSharded(shards, Options{})
			}
			const n = 5000 // well past the context-check stride

			e := mk()
			added, err := e.AddNTriplesCtx(context.Background(), strings.NewReader(ntDoc(n)), 64)
			if err != nil || added != n {
				t.Fatalf("live ctx: added=%d err=%v, want %d nil", added, err, n)
			}

			e = mk()
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			added, err = e.AddNTriplesCtx(ctx, strings.NewReader(ntDoc(n)), 64)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("canceled ctx: err = %v, want context.Canceled", err)
			}
			if added >= n {
				t.Fatalf("canceled ctx: added=%d, want an early stop before %d", added, n)
			}
			// The partial prefix is applied, not rolled back: the epoch
			// reflects the batches that landed before the deadline.
			if added > 0 && e.Epoch() == 0 {
				t.Fatal("partial ingest applied nothing despite added > 0")
			}
		})
	}
}
