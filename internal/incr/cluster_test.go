package incr

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"testing"

	"repro/internal/rdf"
	"repro/internal/rules"
)

// exportFixture builds one engine over the mixed pool (with a removal
// wave so some columns retire) and returns it with its live triples.
func exportFixture(t *testing.T, shards int) Engine {
	t.Helper()
	pool := streamPool(41)
	e := NewSharded(shards, Options{KeepSubjects: true})
	e.Apply(pool, nil)
	// Retire a property entirely and thin the rest so the export's
	// active-column compaction is exercised.
	var rm []rdf.Triple
	for _, tr := range pool {
		if tr.Predicate == "http://syn/p0" || len(rm)%7 == 3 {
			rm = append(rm, tr)
		}
	}
	e.Apply(nil, rm)
	return e
}

// pairFuncs are the pair measures the coordinator serves; evaluated
// against exports and live engines alike.
func pairFuncs(p1, p2 string) []rules.PairCountsFunc {
	return []rules.PairCountsFunc{
		rules.DepFunc(p1, p2).(rules.PairCountsFunc),
		rules.SymDepFunc(p1, p2).(rules.PairCountsFunc),
		rules.DepDisjFunc(p1, p2).(rules.PairCountsFunc),
	}
}

// TestExportAggregatesMatchesEngine checks an export answers every σ
// measure bit-identically to the live engine it was cut from, for both
// engine shapes.
func TestExportAggregatesMatchesEngine(t *testing.T) {
	for _, shards := range []int{1, 4} {
		e := exportFixture(t, shards)
		ex := e.(*Sharded).ExportAggregates()
		lbl := fmt.Sprintf("shards=%d", shards)
		assertRatioEqual(t, lbl+" σCov", ex.Sigma(rules.CovFunc().(rules.CountsFunc)), e.SigmaCov())
		assertRatioEqual(t, lbl+" σSim", ex.Sigma(rules.SimFunc().(rules.CountsFunc)), e.SigmaSim())
		for _, n := range ex.Names {
			if i, ok := ex.NameIndex()[n]; !ok || ex.Names[i] != n {
				t.Fatalf("%s: NameIndex broken for %q", lbl, n)
			}
		}
		for _, pp := range [][2]string{
			{"http://syn/p1", "http://syn/p2"},
			{"http://syn/p2", "http://syn/p1"},
			{"http://syn/p1", "http://never/seen"},
		} {
			for _, fn := range pairFuncs(pp[0], pp[1]) {
				got, ok := ex.SigmaPairs(fn)
				want, live := e.SigmaPairs(fn)
				if !ok || !live {
					t.Fatalf("%s: pair tracking off (export=%v engine=%v)", lbl, ok, live)
				}
				assertRatioEqual(t, fmt.Sprintf("%s dep(%s,%s)", lbl, pp[0], pp[1]), got, want)
			}
		}
		if ex.Epoch == 0 {
			t.Fatalf("%s: export epoch = 0", lbl)
		}
	}
}

// TestExportAggregatesCompactsRetired checks fully-retired properties
// are absent from the exported name space.
func TestExportAggregatesCompactsRetired(t *testing.T) {
	e := exportFixture(t, 2).(*Sharded)
	ex := e.ExportAggregates()
	for i, n := range ex.Names {
		if n == "http://syn/p0" {
			t.Fatal("retired property exported")
		}
		if i > 0 && n <= ex.Names[i-1] {
			t.Fatalf("names not sorted at %d: %q ≤ %q", i, n, ex.Names[i-1])
		}
		if ex.Tracker.Counts()[i] <= 0 {
			t.Fatalf("exported column %q has count %d", n, ex.Tracker.Counts()[i])
		}
	}
}

// TestAggregateExportRoundTrip checks the wire codec is lossless: the
// decode of an encoding re-encodes to the same bytes and answers the
// same σ values.
func TestAggregateExportRoundTrip(t *testing.T) {
	e := exportFixture(t, 4).(*Sharded)
	for _, withPairs := range []bool{true, false} {
		ex := e.ExportAggregates()
		if !withPairs {
			ex.Pairs = nil
		}
		enc := ex.AppendBinary(nil)
		dec, err := DecodeAggregateExport(enc)
		if err != nil {
			t.Fatalf("decode (pairs=%v): %v", withPairs, err)
		}
		if !bytes.Equal(dec.AppendBinary(nil), enc) {
			t.Fatalf("re-encode differs (pairs=%v)", withPairs)
		}
		if dec.Epoch != ex.Epoch {
			t.Fatalf("epoch %d != %d", dec.Epoch, ex.Epoch)
		}
		assertRatioEqual(t, "roundtrip σCov", dec.Sigma(rules.CovFunc().(rules.CountsFunc)), ex.Sigma(rules.CovFunc().(rules.CountsFunc)))
		if _, ok := dec.SigmaPairs(pairFuncs("http://syn/p1", "http://syn/p2")[0]); ok != withPairs {
			t.Fatalf("decoded pairs present = %v, want %v", ok, withPairs)
		}
	}
}

// TestDecodeAggregateExportErrors checks the decoder rejects
// malformed inputs instead of mis-merging.
func TestDecodeAggregateExportErrors(t *testing.T) {
	ex := exportFixture(t, 1).(*Sharded).ExportAggregates()
	enc := ex.AppendBinary(nil)
	if _, err := DecodeAggregateExport(nil); err == nil {
		t.Fatal("decoded empty input")
	}
	if _, err := DecodeAggregateExport([]byte{99}); err == nil {
		t.Fatal("decoded bad version")
	}
	for _, cut := range []int{1, 3, len(enc) / 2, len(enc) - 1} {
		if cut >= len(enc) {
			continue
		}
		if _, err := DecodeAggregateExport(enc[:cut]); err == nil {
			t.Fatalf("decoded truncation at %d", cut)
		}
	}
	if _, err := DecodeAggregateExport(append(append([]byte{}, enc...), 0)); err == nil {
		t.Fatal("decoded trailing bytes")
	}
	// Unsorted names must be rejected: swap two name lengths is fiddly,
	// so build a tiny export by hand with out-of-order names.
	bad := &AggregateExport{Names: []string{"b", "a"}, Tracker: rules.NewCountTracker(2)}
	if _, err := DecodeAggregateExport(bad.AppendBinary(nil)); err == nil {
		t.Fatal("decoded unsorted names")
	}
}

// TestMergeAggregateExports is the cluster-exactness core: splitting a
// stream across subject-disjoint engines and merging their exports
// answers every σ measure bit-identically to one engine holding all
// the data — including through the wire codec.
func TestMergeAggregateExports(t *testing.T) {
	pool := streamPool(43)
	const groups = 3
	ref := NewSharded(2, Options{})
	parts := make([]*Sharded, groups)
	for i := range parts {
		parts[i] = NewSharded(2, Options{})
	}
	route := func(s string) int {
		h := fnv.New32a()
		h.Write([]byte(s))
		return int(h.Sum32() % groups)
	}
	ref.Apply(pool, nil)
	for _, tr := range pool {
		parts[route(tr.Subject)].Apply([]rdf.Triple{tr}, nil)
	}
	var rm []rdf.Triple
	for i, tr := range pool {
		if i%5 == 0 {
			rm = append(rm, tr)
		}
	}
	ref.Apply(nil, rm)
	for _, tr := range rm {
		parts[route(tr.Subject)].Apply(nil, []rdf.Triple{tr})
	}

	exports := make([]*AggregateExport, groups)
	for i, p := range parts {
		enc := p.ExportAggregates().AppendBinary(nil)
		dec, err := DecodeAggregateExport(enc)
		if err != nil {
			t.Fatalf("group %d decode: %v", i, err)
		}
		exports[i] = dec
	}
	merged, pairsOK := MergeAggregateExports(exports)
	if !pairsOK {
		t.Fatal("pairsOK = false with pair tracking on everywhere")
	}
	want := ref.ExportAggregates()
	// Epochs are node-local batch counters, not data: normalize them so
	// the byte comparison covers exactly the aggregate state.
	merged.Epoch, want.Epoch = 0, 0
	if !bytes.Equal(merged.AppendBinary(nil), want.AppendBinary(nil)) {
		t.Fatalf("merged export bytes differ from single-engine reference:\nmerged names: %v\nwant names:   %v",
			merged.Names, want.Names)
	}
	assertRatioEqual(t, "merged σCov", merged.Sigma(rules.CovFunc().(rules.CountsFunc)), ref.SigmaCov())
	assertRatioEqual(t, "merged σSim", merged.Sigma(rules.SimFunc().(rules.CountsFunc)), ref.SigmaSim())
	for _, fn := range pairFuncs("http://syn/p1", "http://syn/p2") {
		got, _ := merged.SigmaPairs(fn)
		wantR, _ := ref.SigmaPairs(fn)
		assertRatioEqual(t, "merged dep", got, wantR)
	}

	// One pairless node disables exact pair reads for the whole merge,
	// mirroring Sharded.SigmaPairs.
	noPairs := NewDataset(Options{DisablePairCounts: true})
	noPairs.Apply(pool[:5], nil)
	mixed, pairsOK := MergeAggregateExports([]*AggregateExport{exports[0], noPairs.ExportAggregates()})
	if pairsOK || mixed.Pairs != nil {
		t.Fatal("pairsOK with a pairless member")
	}
	if _, ok := mixed.SigmaPairs(pairFuncs("a", "b")[0]); ok {
		t.Fatal("SigmaPairs ok on pairless merge")
	}

	// Single-export merge is the identity.
	solo, ok := MergeAggregateExports(exports[:1])
	if !ok || !bytes.Equal(solo.AppendBinary(nil), exports[0].AppendBinary(nil)) {
		t.Fatal("single-export merge not identity")
	}
}
