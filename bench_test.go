package repro

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/ilp"
	"repro/internal/incr"
	"repro/internal/matrix"
	"repro/internal/rdf"
	"repro/internal/refine"
	"repro/internal/rules"
)

// One benchmark per paper artifact: running `go test -bench=.` at the
// repo root regenerates every table and figure (quick budgets; use
// cmd/paper for the full-budget runs recorded in EXPERIMENTS.md).

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	r, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	cfg := experiments.Config{Quick: true, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2DBpediaStats(b *testing.B)         { benchExperiment(b, "fig2") }
func BenchmarkFig3WordNetStats(b *testing.B)         { benchExperiment(b, "fig3") }
func BenchmarkFig4aCovK2(b *testing.B)               { benchExperiment(b, "fig4a") }
func BenchmarkFig4bSimK2(b *testing.B)               { benchExperiment(b, "fig4b") }
func BenchmarkFig4cSymDepK2(b *testing.B)            { benchExperiment(b, "fig4c") }
func BenchmarkFig5aCovTheta09(b *testing.B)          { benchExperiment(b, "fig5a") }
func BenchmarkFig5bSimTheta09(b *testing.B)          { benchExperiment(b, "fig5b") }
func BenchmarkTable1DepMatrix(b *testing.B)          { benchExperiment(b, "table1") }
func BenchmarkTable2SymDepRanking(b *testing.B)      { benchExperiment(b, "table2") }
func BenchmarkFig6aWordNetCovK2(b *testing.B)        { benchExperiment(b, "fig6a") }
func BenchmarkFig6bWordNetSimK2(b *testing.B)        { benchExperiment(b, "fig6b") }
func BenchmarkFig7aWordNetLowestK(b *testing.B)      { benchExperiment(b, "fig7a") }
func BenchmarkFig7bWordNetLowestK(b *testing.B)      { benchExperiment(b, "fig7b") }
func BenchmarkFig8YagoScalability(b *testing.B)      { benchExperiment(b, "fig8") }
func BenchmarkSec74SemanticCorrectness(b *testing.B) { benchExperiment(b, "sec74") }

// BenchmarkILPEncodingRoundtrip covers experiment E14: encode a
// refinement instance into the paper's ILP form and solve it exactly.
func BenchmarkILPEncodingRoundtrip(b *testing.B) {
	v := datagen.DBpediaPersons(0.01)
	p := &refine.Problem{View: v, Rule: rules.CovRule(), K: 2, Theta1: 65, Theta2: 100}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, ok, err := refine.SolveExact(p, refine.EncodeOptions{SymmetryBreaking: true}, ilp.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if !ok {
			b.Fatal("expected feasible")
		}
	}
}

// --- Ablation benches (DESIGN.md §5) ---

// Signature-set compression vs. the raw per-subject matrix: the
// paper's key scalability lever. The signature evaluator enumerates
// (|Λ|·|P|)^n rough assignments; the raw evaluator enumerates
// (|S|·|P|)^n concrete assignments over the uncompressed matrix. Both
// are exact and agree (rules package tests); only a tiny dataset keeps
// the raw variant within benchmark time.
func BenchmarkAblationSignatureCompression(b *testing.B) {
	v := datagen.DBpediaPersons(0.0002) // ~160 subjects, 64 signatures
	b.Run("signatures", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rules.Evaluate(rules.SimRule(), v); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("raw-subjects", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rules.EvalNaive(rules.SimRule(), v); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Generic rough-assignment evaluator vs. closed forms.
func BenchmarkAblationClosedFormVsGeneric(b *testing.B) {
	v := datagen.DBpediaPersons(0.01)
	b.Run("closed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = rules.Similarity(v)
		}
	})
	b.Run("generic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rules.Evaluate(rules.SimRule(), v); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Pseudo-Boolean propagation solver vs. LP-based branch & bound on the
// same paper encoding.
func BenchmarkAblationPBvsBnB(b *testing.B) {
	v := datagen.DBpediaPersons(0.002)
	// A reduced instance (top 5 signatures) keeps B&B's dense simplex
	// within benchmark time; even here the propagation solver wins by
	// three orders of magnitude.
	idx := make([]int, 5)
	for i := range idx {
		idx[i] = i
	}
	small := v.Subset(idx)
	p := &refine.Problem{View: small, Rule: rules.CovRule(), K: 2, Theta1: 60, Theta2: 100}
	enc, err := refine.Encode(p, refine.EncodeOptions{SymmetryBreaking: true})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("pb", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if res := ilp.SolvePB(enc.Model, ilp.Options{}); res.Status != ilp.StatusFeasible {
				b.Fatalf("status %v", res.Status)
			}
		}
	})
	b.Run("bnb", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if res := ilp.SolveBnB(enc.Model, ilp.Options{}); res.Status != ilp.StatusFeasible {
				b.Fatalf("status %v", res.Status)
			}
		}
	})
}

// Symmetry-breaking hash constraints on vs. off (Section 6.3).
func BenchmarkAblationSymmetryBreaking(b *testing.B) {
	// An infeasible instance: infeasibility proofs traverse the whole
	// symmetric search space, where the hash ordering is supposed to
	// help (Section 6.3).
	v := datagen.DBpediaPersons(0.002)
	idx := make([]int, 20)
	for i := range idx {
		idx[i] = i
	}
	p := &refine.Problem{View: v.Subset(idx), Rule: rules.CovRule(), K: 3, Theta1: 78, Theta2: 100}
	for _, sym := range []bool{true, false} {
		name := "off"
		if sym {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, ok, err := refine.SolveExact(p, refine.EncodeOptions{SymmetryBreaking: sym}, ilp.Options{MaxDecisions: 2_000_000})
				if err != nil {
					b.Fatal(err)
				}
				if ok {
					b.Fatal("expected infeasible")
				}
			}
		})
	}
}

// Serial vs. parallel refinement engine on a Fig4a-class search: the
// same HighestTheta sweep with Workers=1 (fully sequential) and
// Workers=GOMAXPROCS (worker-pool restarts + portfolio racing +
// speculative θ probes). Outcomes are bit-identical by construction
// (asserted in internal/refine's determinism tests); this measures the
// wall-clock gap, which on a multi-core runner should be ≥2×.
func BenchmarkAblationParallelSearch(b *testing.B) {
	v := datagen.DBpediaPersons(0.01)
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := refine.SearchOptions{
				Heuristic: refine.HeuristicOptions{Restarts: 6, MaxIters: 150, Seed: 1},
				Solver:    ilp.Options{MaxDecisions: 100_000},
				Encode:    refine.EncodeOptions{SymmetryBreaking: true, MaxTVars: 2_500},
				Workers:   workers,
			}
			for i := 0; i < b.N; i++ {
				if _, err := refine.HighestTheta(v, rules.CovRule(), nil, 2, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Sequential θ sweep (the paper's choice) vs. binary search over the
// same grid. The paper argues sequential wins because infeasible
// instances are far slower than feasible ones; binary search hits more
// of them.
func BenchmarkAblationThetaSearch(b *testing.B) {
	v := datagen.DBpediaPersons(0.01)
	opts := refine.SearchOptions{
		Heuristic: refine.HeuristicOptions{Restarts: 2, MaxIters: 40},
		Solver:    ilp.Options{MaxDecisions: 20_000},
		Encode:    refine.EncodeOptions{SymmetryBreaking: true, MaxTVars: 2_500},
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := refine.HighestTheta(v, rules.CovRule(), nil, 2, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("binary", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lo, hi := int64(54), int64(100) // base σCov to 1.0 on the 0.01 grid
			for lo < hi {
				mid := (lo + hi + 1) / 2
				p := &refine.Problem{View: v, Rule: rules.CovRule(), K: 2, Theta1: mid, Theta2: 100}
				_, ok, err := refine.SolveHeuristic(p, refine.HeuristicOptions{
					Restarts: 2, MaxIters: 40, TargetEarlyExit: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				if ok {
					lo = mid
				} else {
					hi = mid - 1
				}
			}
		}
	})
}

// Interned term dictionary vs. string-keyed indexes: the full ingest
// pipeline (streaming N-Triples decode → graph build → view
// construction) on the DBpedia Persons corpus, run once through the
// ID-based hot path (zero-copy interning decoder, integer-keyed
// indexes, single-dictionary-pass view) and once through the retained
// pre-refactor string implementation (experiments.RefGraph). Both
// produce bit-identical views (equivalence_test.go); this measures the
// throughput and allocation gap, which should be ≥2× on ns/op and far
// larger on allocs/op. cmd/benchjson records the same workloads to
// BENCH_ingest.json.
func BenchmarkAblationInternedVsString(b *testing.B) {
	data := experiments.IngestCorpus(0.01)
	b.Run("interned", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := experiments.IngestInterned(data); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("string", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := experiments.IngestString(data); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("incremental", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := experiments.IngestIncremental(data, 10000); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Incremental maintenance (internal/incr) vs. from-scratch rebuild:
// steady-state cost of one churn batch (add B triples, read σCov, take
// a snapshot view, retract the batch) against a preloaded DBpedia
// Persons dataset. The incremental engine pays O(touched subjects ·
// |P|) per batch plus an O(|Λ|·|P|) snapshot; the rebuild pays a full
// O(|D|) matrix.FromGraph scan regardless of batch size, which is the
// gap that makes rdfserved viable under live traffic.
func BenchmarkAblationIncrementalVsRebuild(b *testing.B) {
	base := datagen.DBpediaPersonsGraph(0.01)
	makeChurn := func(n int) []rdf.Triple {
		churn := make([]rdf.Triple, 0, n)
		for i := 0; i < n; i++ {
			churn = append(churn, rdf.Triple{
				Subject:   fmt.Sprintf("http://bench/churn/%d", i%2000),
				Predicate: fmt.Sprintf("http://bench/p%d", i%13),
				Object:    rdf.NewURI(fmt.Sprintf("http://bench/o%d", i)),
			})
		}
		return churn
	}
	for _, size := range []int{1, 100, 10000} {
		churn := makeChurn(size)
		b.Run(fmt.Sprintf("incremental/batch=%d", size), func(b *testing.B) {
			d := incr.FromGraph(base, incr.Options{})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Apply(churn, nil)
				_ = d.SigmaCov()
				_ = d.Snapshot()
				d.Apply(nil, churn)
			}
		})
		b.Run(fmt.Sprintf("rebuild/batch=%d", size), func(b *testing.B) {
			g := rdf.NewGraph()
			g.Merge(base)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, t := range churn {
					g.Add(t)
				}
				v := matrix.FromGraph(g, matrix.Options{})
				_ = rules.Coverage(v)
				for _, t := range churn {
					g.Remove(t)
				}
			}
		})
	}
}

// BenchmarkRefineDep is the compiled-evaluator acceptance benchmark: a
// σDep local search on the 64-signature DBpedia Persons generator,
// with the pair-count kernels (pairkernel) vs the scan-per-evaluation
// baseline. The sig-scans/op metric is the ablation's headline: the
// kernel path scans the signature list only for the final exact
// verification (2 scans per search), the baseline once per candidate
// move (~30k), a ≥10⁴× reduction with bit-identical assignments
// (pinned by refine's TestPairModeBitIdenticalToGenericSearch).
func BenchmarkRefineDep(b *testing.B) {
	v := datagen.DBpediaPersons(0.002)
	for _, mode := range []struct {
		name     string
		baseline bool
	}{{"pairkernel", false}, {"baseline", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			var scans int64
			for i := 0; i < b.N; i++ {
				n, err := experiments.RefineDepWorkload(v, mode.baseline, 1)
				if err != nil {
					b.Fatal(err)
				}
				scans += n
			}
			b.ReportMetric(float64(scans)/float64(b.N), "sig-scans/op")
		})
	}
}

// BenchmarkAblationDepRefineProps scales the σDep local search across
// |P| ∈ {8, 64, 256} on synthetic DBpedia-shaped views (64
// signatures), pair-count kernels vs the generic baseline — the
// compiled-evaluator ablation table in EXPERIMENTS.md.
func BenchmarkAblationDepRefineProps(b *testing.B) {
	for _, nProps := range []int{8, 64, 256} {
		v := experiments.DepRefineView(nProps, 64, 1)
		for _, mode := range []struct {
			name     string
			baseline bool
		}{{"pairkernel", false}, {"baseline", true}} {
			b.Run(fmt.Sprintf("props=%d/%s", nProps, mode.name), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := experiments.RefineDepWorkload(v, mode.baseline, 1); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkCoverageIgnoring measures the σCov-ignoring closed form
// after the pooled scratch-slice rewrite: 4 allocs/op — only the
// returned big.Int Ratio — where the map-based implementation paid a
// map build plus a hashed lookup per column (2.5× slower; see
// EXPERIMENTS.md).
func BenchmarkCoverageIgnoring(b *testing.B) {
	v := experiments.DepRefineView(256, 64, 1)
	ignore := []string{v.Properties()[3], v.Properties()[100], "http://absent"}
	_ = rules.CoverageIgnoring(v, ignore...) // warm the memoized N_p and the pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rules.CoverageIgnoring(v, ignore...)
	}
}

// The sparse/dense pair-count build crossover is measured inside
// internal/matrix (BenchmarkPairCountsBuild there forces each strategy
// explicitly, bypassing the sync.Once memoization); the numbers are
// recorded in EXPERIMENTS.md.
