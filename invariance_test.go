package repro

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/datagen"
	"repro/internal/incr"
	"repro/internal/matrix"
	"repro/internal/rdf"
	"repro/internal/refine"
	"repro/internal/rules"
	"repro/internal/term"
)

// These tests pin the compressed-signature tier's central guarantee:
// the container representation (dense words, sorted-index sparse, or
// the adaptive cost-model mix) is invisible to every consumer. Forcing
// each policy over every corpus shape must reproduce byte-identical
// canonical view encodings, exactly equal σ rationals for all five
// closed forms, identical refinement outcomes, and checkpoints that
// restore across policies.

// invarianceCorpora is the corpus battery: the paper-shaped narrow
// datasets (where the cost model keeps everything dense), a randomized
// mixed-shape set, and the wide schema the sparse tier exists for.
func invarianceCorpora() map[string]*rdf.Graph {
	rng := rand.New(rand.NewSource(42))
	random := rdf.NewGraph()
	for _, tr := range randomTriples(rng, 600) {
		random.Add(tr)
	}
	return map[string]*rdf.Graph{
		"random":  random,
		"dbpedia": datagen.DBpediaPersonsGraph(0.01),
		"wordnet": datagen.WordNetNounsGraph(0.01),
		"mixed":   datagen.MixedDrugSultans(datagen.MixedOptions{Seed: 5}),
		"wide":    datagen.WideSchemaGraph(datagen.WideAtScale(0.02, 11)),
	}
}

// policyArtifacts is everything a policy run produces that consumers
// can observe: the canonical view bytes, the five σ rationals, and the
// full refinement outcome.
type policyArtifacts struct {
	viewBytes []byte
	sigma     map[string]string
	theta1    int64
	theta2    int64
	k         int
	assign    []int
}

func buildArtifacts(t *testing.T, g *rdf.Graph) policyArtifacts {
	t.Helper()
	v := matrix.FromGraph(g, matrix.Options{})
	a := policyArtifacts{
		viewBytes: v.AppendBinary(nil),
		sigma:     map[string]string{},
	}
	a.sigma["cov"] = rules.Coverage(v).String()
	a.sigma["sim"] = rules.Similarity(v).String()
	if props := v.Properties(); len(props) >= 2 {
		p1, p2 := props[0], props[len(props)/2]
		a.sigma["dep"] = rules.Dep(v, p1, p2).String()
		a.sigma["symdep"] = rules.SymDep(v, p1, p2).String()
		a.sigma["depdisj"] = rules.DepDisjEval(v, p1, p2).String()
	}
	out, err := refine.HighestTheta(v, rules.CovRule(), nil, 2, refine.SearchOptions{
		Engine:    refine.EngineHeuristic,
		Heuristic: refine.HeuristicOptions{Restarts: 2, MaxIters: 40, Seed: 7},
	})
	if err != nil {
		t.Fatalf("refine: %v", err)
	}
	a.theta1, a.theta2, a.k = out.Theta1, out.Theta2, out.K
	if out.Refinement != nil {
		a.assign = append(a.assign, out.Refinement.Assignment...)
	}
	return a
}

var invariancePolicies = map[string]bitset.Policy{
	"dense":    bitset.PolicyDense,
	"sparse":   bitset.PolicySparse,
	"adaptive": bitset.PolicyAdaptive,
}

// TestRepresentationInvariance forces each container policy over each
// corpus and compares every observable artifact against the dense
// baseline.
func TestRepresentationInvariance(t *testing.T) {
	defer bitset.SetPolicy(bitset.SetPolicy(bitset.PolicyDense))
	for name, g := range invarianceCorpora() {
		t.Run(name, func(t *testing.T) {
			bitset.SetPolicy(bitset.PolicyDense)
			base := buildArtifacts(t, g)
			for pname, pol := range invariancePolicies {
				bitset.SetPolicy(pol)
				got := buildArtifacts(t, g)
				if !bytes.Equal(got.viewBytes, base.viewBytes) {
					t.Errorf("%s: view encoding differs from dense baseline", pname)
				}
				for fn, want := range base.sigma {
					if got.sigma[fn] != want {
						t.Errorf("%s: σ%s = %s, want %s", pname, fn, got.sigma[fn], want)
					}
				}
				if got.theta1 != base.theta1 || got.theta2 != base.theta2 || got.k != base.k {
					t.Errorf("%s: refinement (θ=%d/%d,k=%d), want (θ=%d/%d,k=%d)", pname,
						got.theta1, got.theta2, got.k, base.theta1, base.theta2, base.k)
				}
				if len(got.assign) != len(base.assign) {
					t.Errorf("%s: assignment length %d, want %d", pname, len(got.assign), len(base.assign))
					continue
				}
				for i := range got.assign {
					if got.assign[i] != base.assign[i] {
						t.Errorf("%s: assignment[%d] = %d, want %d", pname, i, got.assign[i], base.assign[i])
						break
					}
				}
			}
		})
	}
}

// TestViewCodecInvariance: decoding a canonical view encoding under any
// policy re-encodes to the same bytes, and the decoded view evaluates
// identically. (The codec is the checkpoint and cluster wire format, so
// a policy-dependent decode would poison durable state.)
func TestViewCodecInvariance(t *testing.T) {
	defer bitset.SetPolicy(bitset.SetPolicy(bitset.PolicyDense))
	for name, g := range invarianceCorpora() {
		t.Run(name, func(t *testing.T) {
			bitset.SetPolicy(bitset.PolicyDense)
			v := matrix.FromGraph(g, matrix.Options{})
			enc := v.AppendBinary(nil)
			cov := rules.Coverage(v).String()
			for pname, pol := range invariancePolicies {
				bitset.SetPolicy(pol)
				dec, err := matrix.DecodeView(enc)
				if err != nil {
					t.Fatalf("%s: decode: %v", pname, err)
				}
				if !bytes.Equal(dec.AppendBinary(nil), enc) {
					t.Errorf("%s: re-encode differs", pname)
				}
				if got := rules.Coverage(dec).String(); got != cov {
					t.Errorf("%s: σCov on decoded view = %s, want %s", pname, got, cov)
				}
			}
		})
	}
}

// TestCheckpointRepresentationInvariance builds the live engine under
// each policy, exports a checkpoint, and restores it under every other
// policy. RestoreCheckpoint's integrity pins (Σ-counts, pair counts and
// view must rebuild bit-identical) make a representation leak a hard
// failure. The exported aggregates' canonical encodings must also be
// byte-equal across build policies — the durable format cannot depend
// on the in-memory container mix.
func TestCheckpointRepresentationInvariance(t *testing.T) {
	defer bitset.SetPolicy(bitset.SetPolicy(bitset.PolicyDense))
	corpora := map[string]*rdf.Graph{
		"random": invarianceCorpora()["random"],
		// 0.06 crosses the pair trackers into sparse mode under adaptive
		// (>1024 columns) so the sparse codec path is on the wire.
		"wide": datagen.WideSchemaGraph(datagen.WideAtScale(0.06, 13)),
	}
	for name, g := range corpora {
		t.Run(name, func(t *testing.T) {
			triples := g.Triples()
			var baseView, baseTracker, basePairs []byte
			for aname, apol := range invariancePolicies {
				bitset.SetPolicy(apol)
				dict := term.NewDict()
				d := incr.NewDatasetWithDict(dict, incr.Options{})
				d.Apply(triples, nil)
				st := d.ExportCheckpoint()

				viewEnc := st.View.AppendBinary(nil)
				trackerEnc := st.Tracker.AppendBinary(nil)
				pairsEnc := st.Pairs.AppendBinary(nil)
				if baseView == nil {
					baseView, baseTracker, basePairs = viewEnc, trackerEnc, pairsEnc
				} else {
					if !bytes.Equal(viewEnc, baseView) {
						t.Errorf("%s: checkpoint view encoding differs across policies", aname)
					}
					if !bytes.Equal(trackerEnc, baseTracker) {
						t.Errorf("%s: checkpoint Σ-count encoding differs across policies", aname)
					}
					if !bytes.Equal(pairsEnc, basePairs) {
						t.Errorf("%s: checkpoint pair encoding differs across policies", aname)
					}
				}

				for bname, bpol := range invariancePolicies {
					bitset.SetPolicy(bpol)
					d2 := incr.NewDatasetWithDict(dict, incr.Options{})
					if err := d2.RestoreCheckpoint(st); err != nil {
						t.Fatalf("export under %s, restore under %s: %v", aname, bname, err)
					}
					if got, want := d2.SigmaCov().String(), d.SigmaCov().String(); got != want {
						t.Errorf("restore under %s: σCov = %s, want %s", bname, got, want)
					}
				}
			}
		})
	}
}

// TestStorageStatsAcrossPolicies sanity-checks the accounting the
// serving tier exposes: forcing sparse on a wide corpus must report a
// large footprint win over forced dense, while the narrow paper shapes
// stay fully dense under the adaptive cost model.
func TestStorageStatsAcrossPolicies(t *testing.T) {
	defer bitset.SetPolicy(bitset.SetPolicy(bitset.PolicyDense))
	// 5000 columns: wide enough that the dense per-signature word cost
	// dominates the fixed container overheads the reduction is up against.
	wide := datagen.WideSchemaGraph(datagen.WideAtScale(0.25, 3))

	bitset.SetPolicy(bitset.PolicyDense)
	dense := matrix.FromGraph(wide, matrix.Options{})
	bitset.SetPolicy(bitset.PolicyAdaptive)
	adaptive := matrix.FromGraph(wide, matrix.Options{})

	ds, as := dense.StorageStats(), adaptive.StorageStats()
	if ds.SparseSigs != 0 {
		t.Fatalf("forced dense produced %d sparse signatures", ds.SparseSigs)
	}
	if as.SparseSigs == 0 {
		t.Fatalf("adaptive kept the wide corpus fully dense: %+v", as)
	}
	if as.SigBytes*5 > ds.SigBytes {
		t.Fatalf("wide signature bytes: adaptive %d vs dense %d, want ≥5x reduction",
			as.SigBytes, ds.SigBytes)
	}

	for _, narrow := range []*rdf.Graph{
		datagen.DBpediaPersonsGraph(0.01),
		datagen.WordNetNounsGraph(0.01),
	} {
		st := matrix.FromGraph(narrow, matrix.Options{}).StorageStats()
		if st.SparseSigs != 0 {
			t.Fatalf("adaptive compressed a narrow paper corpus: %+v", st)
		}
	}
}

// TestFromGraphGroupingAllocs pins the grouping loop's allocation
// discipline: the per-subject key probe reuses one buffer and only a
// never-seen pattern materializes a container, so FromGraph's
// allocation count tracks distinct signatures, not subjects. A
// regression to per-subject key/Indices churn multiplies allocations
// by the subject count and trips the bound.
func TestFromGraphGroupingAllocs(t *testing.T) {
	defer bitset.SetPolicy(bitset.SetPolicy(bitset.PolicyAdaptive))
	const subjects, sigs, props = 2000, 10, 600
	g := rdf.NewGraph()
	for s := 0; s < subjects; s++ {
		tmpl := s % sigs
		for k := 0; k < 8; k++ {
			g.Add(rdf.Triple{
				Subject:   fmt.Sprintf("http://x/s%d", s),
				Predicate: fmt.Sprintf("http://x/p%03d", (tmpl*61+k*7)%props),
				Object:    rdf.NewURI("http://x/o"),
			})
		}
	}
	allocs := testing.AllocsPerRun(3, func() {
		matrix.FromGraph(g, matrix.Options{})
	})
	// Generous fixed budget: far above the O(props + sigs) construction
	// cost, far below one allocation per subject.
	if allocs > subjects/2 {
		t.Fatalf("FromGraph allocations = %.0f for %d subjects / %d signatures; grouping loop is churning",
			allocs, subjects, sigs)
	}
}
