package repro

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/experiments"
	"repro/internal/incr"
	"repro/internal/matrix"
	"repro/internal/rdf"
	"repro/internal/refine"
	"repro/internal/rules"
)

// These tests pin the refactor's central guarantee: the interned
// ID-based pipeline (term dictionary + ID graph + ID view construction
// + ID-keyed incremental engine) produces byte-for-byte the same
// artifacts as the pre-refactor string-keyed implementation, which is
// retained verbatim as experiments.RefGraph. "Same" is checked at
// every level the paper's algorithms consume: the view's property
// columns and ordered signature sets, the exact σCov/σSim rationals,
// and complete refinement outcomes (θ, k, per-signature assignment).

// randomTriples synthesizes a dataset with overlapping subjects,
// skewed property use, URI and literal objects, rdf:type declarations
// and duplicate triples (dedup must agree too).
func randomTriples(rng *rand.Rand, n int) []rdf.Triple {
	out := make([]rdf.Triple, 0, n)
	for i := 0; i < n; i++ {
		s := fmt.Sprintf("http://ex/s%d", rng.Intn(n/4+1))
		p := fmt.Sprintf("http://ex/p%d", rng.Intn(12))
		var o rdf.Term
		switch rng.Intn(4) {
		case 0:
			o = rdf.NewLiteral(fmt.Sprintf("value %d", rng.Intn(20)))
		case 1:
			// Literal colliding with a URI spelling: the dictionary is
			// shared but the kind keeps them distinct.
			o = rdf.NewLiteral(fmt.Sprintf("http://ex/o%d", rng.Intn(10)))
		default:
			o = rdf.NewURI(fmt.Sprintf("http://ex/o%d", rng.Intn(30)))
		}
		if rng.Intn(10) == 0 {
			p = rdf.TypeURI
			o = rdf.NewURI(fmt.Sprintf("http://ex/T%d", rng.Intn(3)))
		}
		out = append(out, rdf.Triple{Subject: s, Predicate: p, Object: o})
	}
	return out
}

func viewsEqual(t *testing.T, tag string, a, b *matrix.View) {
	t.Helper()
	ap, bp := a.Properties(), b.Properties()
	if len(ap) != len(bp) {
		t.Fatalf("%s: %d properties vs %d", tag, len(ap), len(bp))
	}
	for i := range ap {
		if ap[i] != bp[i] {
			t.Fatalf("%s: property column %d: %q vs %q", tag, i, ap[i], bp[i])
		}
	}
	if a.NumSubjects() != b.NumSubjects() {
		t.Fatalf("%s: %d subjects vs %d", tag, a.NumSubjects(), b.NumSubjects())
	}
	as, bs := a.Signatures(), b.Signatures()
	if len(as) != len(bs) {
		t.Fatalf("%s: %d signatures vs %d", tag, len(as), len(bs))
	}
	for i := range as {
		if as[i].Count != bs[i].Count || as[i].Bits.String() != bs[i].Bits.String() {
			t.Fatalf("%s: signature %d: (%s ×%d) vs (%s ×%d)", tag, i,
				as[i].Bits.String(), as[i].Count, bs[i].Bits.String(), bs[i].Count)
		}
		if len(as[i].Subjects) != len(bs[i].Subjects) {
			t.Fatalf("%s: signature %d subject lists differ in length", tag, i)
		}
		for j := range as[i].Subjects {
			if as[i].Subjects[j] != bs[i].Subjects[j] {
				t.Fatalf("%s: signature %d subject %d: %q vs %q", tag, i, j,
					as[i].Subjects[j], bs[i].Subjects[j])
			}
		}
	}
}

func ratiosEqual(t *testing.T, tag string, a, b rules.Ratio) {
	t.Helper()
	if a.Fav.Cmp(b.Fav) != 0 || a.Tot.Cmp(b.Tot) != 0 {
		t.Fatalf("%s: %s vs %s", tag, a, b)
	}
}

// TestInternedPipelineEquivalence is the randomized string-vs-ID
// equivalence proof for the batch pipeline: graph construction, view
// snapshot (with and without retained subjects), σ values, and full
// refinement outcomes.
func TestInternedPipelineEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		triples := randomTriples(rng, 600)

		idGraph := rdf.NewGraph()
		refGraph := experiments.NewRefGraph()
		for _, tr := range triples {
			added := idGraph.Add(tr)
			refAdded := refGraph.Add(tr)
			if added != refAdded {
				t.Fatalf("seed %d: dedup disagreement on %v: %v vs %v", seed, tr, added, refAdded)
			}
		}
		if idGraph.Len() != refGraph.Len() {
			t.Fatalf("seed %d: %d triples vs %d", seed, idGraph.Len(), refGraph.Len())
		}

		for _, keep := range []bool{false, true} {
			opts := matrix.Options{KeepSubjects: keep}
			idView := matrix.FromGraph(idGraph, opts)
			refView := refGraph.View(opts)
			viewsEqual(t, fmt.Sprintf("seed %d keep=%v", seed, keep), idView, refView)

			ratiosEqual(t, "σCov", rules.Coverage(idView), rules.Coverage(refView))
			ratiosEqual(t, "σSim", rules.Similarity(idView), rules.Similarity(refView))
			props := idView.Properties()
			if len(props) >= 2 {
				ratiosEqual(t, "σDep", rules.Dep(idView, props[0], props[1]), rules.Dep(refView, props[0], props[1]))
				ratiosEqual(t, "σSymDep", rules.SymDep(idView, props[0], props[1]), rules.SymDep(refView, props[0], props[1]))
			}
		}

		// Refinement: identical searches over both views must produce
		// identical outcomes — same θ, same k, same assignment.
		idView := matrix.FromGraph(idGraph, matrix.Options{})
		refView := refGraph.View(matrix.Options{})
		opts := refine.SearchOptions{
			Heuristic: refine.HeuristicOptions{Restarts: 2, MaxIters: 40, Seed: seed},
			Engine:    refine.EngineHeuristic,
		}
		idOut, err1 := refine.HighestTheta(idView, rules.CovRule(), nil, 2, opts)
		refOut, err2 := refine.HighestTheta(refView, rules.CovRule(), nil, 2, opts)
		if err1 != nil || err2 != nil {
			t.Fatalf("seed %d: refine errors: %v, %v", seed, err1, err2)
		}
		if idOut.Theta1 != refOut.Theta1 || idOut.Theta2 != refOut.Theta2 || idOut.K != refOut.K {
			t.Fatalf("seed %d: outcome (θ=%d/%d,k=%d) vs (θ=%d/%d,k=%d)", seed,
				idOut.Theta1, idOut.Theta2, idOut.K, refOut.Theta1, refOut.Theta2, refOut.K)
		}
		if (idOut.Refinement == nil) != (refOut.Refinement == nil) {
			t.Fatalf("seed %d: one refinement nil", seed)
		}
		if idOut.Refinement != nil {
			ia, ra := idOut.Refinement.Assignment, refOut.Refinement.Assignment
			if len(ia) != len(ra) {
				t.Fatalf("seed %d: assignment lengths %d vs %d", seed, len(ia), len(ra))
			}
			for i := range ia {
				if ia[i] != ra[i] {
					t.Fatalf("seed %d: assignment[%d] = %d vs %d", seed, i, ia[i], ra[i])
				}
			}
		}
	}
}

// TestInternedIncrementalEquivalence drives the ID-keyed incremental
// engine through randomized add/remove batches and checks each epoch
// snapshot against the string-reference view of the surviving triples.
func TestInternedIncrementalEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		d := incr.NewDataset(incr.Options{KeepSubjects: true})
		alive := map[rdf.Triple]struct{}{}

		for batch := 0; batch < 6; batch++ {
			add := randomTriples(rng, 150)
			var remove []rdf.Triple
			for tr := range alive {
				if rng.Intn(4) == 0 {
					remove = append(remove, tr)
				}
			}
			d.Apply(add, remove)
			for _, tr := range add {
				alive[tr] = struct{}{}
			}
			for _, tr := range remove {
				delete(alive, tr)
			}

			ref := experiments.NewRefGraph()
			for tr := range alive {
				ref.Add(tr)
			}
			refView := ref.View(matrix.Options{KeepSubjects: true})
			snap := d.Snapshot()
			viewsEqual(t, fmt.Sprintf("seed %d batch %d", seed, batch), snap.View, refView)
			ratiosEqual(t, "live σCov", d.SigmaCov(), rules.Coverage(refView))
			ratiosEqual(t, "live σSim", d.SigmaSim(), rules.Similarity(refView))
		}
	}
}
